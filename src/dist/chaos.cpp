#include "dist/chaos.h"

#include <poll.h>
#include <sys/socket.h>

#include <chrono>
#include <utility>

#include "util/error.h"
#include "util/log.h"

namespace reduce::dist {

const char* chaos_action_name(chaos_action action) {
    switch (action) {
        case chaos_action::pass: return "pass";
        case chaos_action::split: return "split";
        case chaos_action::delay: return "delay";
        case chaos_action::duplicate: return "duplicate";
        case chaos_action::garble: return "garble";
        case chaos_action::truncate: return "truncate";
        case chaos_action::drop: return "drop";
    }
    return "?";
}

// --- chaos_schedule ---------------------------------------------------------

chaos_schedule::chaos_schedule(const chaos_config& cfg, std::uint64_t stream)
    : cfg_(cfg), rng_(mix_seed(cfg.seed, stream)) {}

chaos_action chaos_schedule::next_action() {
    // One draw against cumulative thresholds: the documented first-hit-wins
    // order, and exactly one rng consumption per frame regardless of rates
    // (keeps schedules comparable across configs with the same seed).
    const double u = rng_.uniform();
    double edge = cfg_.drop_rate;
    if (u < edge) { return chaos_action::drop; }
    edge += cfg_.truncate_rate;
    if (u < edge) { return chaos_action::truncate; }
    edge += cfg_.garble_rate;
    if (u < edge) { return chaos_action::garble; }
    edge += cfg_.duplicate_rate;
    if (u < edge) { return chaos_action::duplicate; }
    edge += cfg_.delay_rate;
    if (u < edge) { return chaos_action::delay; }
    edge += cfg_.split_rate;
    if (u < edge) { return chaos_action::split; }
    return chaos_action::pass;
}

std::size_t chaos_schedule::split_point(std::size_t frame_size) {
    REDUCE_CHECK(frame_size >= 2, "cannot split a " << frame_size << "-byte frame");
    return 1 + static_cast<std::size_t>(rng_.uniform_index(frame_size - 1));
}

int chaos_schedule::delay_ms() {
    return static_cast<int>(rng_.uniform_int(cfg_.delay_min_ms, cfg_.delay_max_ms));
}

std::size_t chaos_schedule::garble(std::string& frame) {
    REDUCE_CHECK(frame.size() > 4, "cannot garble a " << frame.size() << "-byte frame");
    const std::size_t offset = 4 + static_cast<std::size_t>(rng_.uniform_index(frame.size() - 4));
    // XOR with a nonzero mask guarantees the byte actually changes.
    frame[offset] = static_cast<char>(static_cast<unsigned char>(frame[offset]) ^
                                      static_cast<unsigned char>(1 + rng_.uniform_index(255)));
    return offset;
}

std::size_t chaos_schedule::truncate_point(std::size_t frame_size) {
    REDUCE_CHECK(frame_size >= 2, "cannot truncate a " << frame_size << "-byte frame");
    return 1 + static_cast<std::size_t>(rng_.uniform_index(frame_size - 1));
}

// --- chaos_proxy ------------------------------------------------------------

struct chaos_proxy::pipe_pair {
    tcp_socket client;
    tcp_socket upstream;
    std::atomic<bool> killed{false};

    /// Severs both directions. shutdown() — not close() — because the pump
    /// threads still own the descriptors: it wakes their blocking reads with
    /// EOF and fails their writes, without racing descriptor reuse.
    void kill() {
        if (killed.exchange(true)) { return; }
        if (client.valid()) { ::shutdown(client.fd(), SHUT_RDWR); }
        if (upstream.valid()) { ::shutdown(upstream.fd(), SHUT_RDWR); }
    }
};

chaos_proxy::chaos_proxy(chaos_config cfg, std::string target_host,
                         std::function<int()> target_port)
    : cfg_(cfg), target_host_(std::move(target_host)), target_port_(std::move(target_port)) {}

chaos_proxy::~chaos_proxy() { stop(); }

void chaos_proxy::start() {
    REDUCE_CHECK(!listener_.has_value(), "chaos_proxy already started");
    listener_.emplace("127.0.0.1", 0);
    port_ = listener_->port();
    stop_.store(false);
    accept_thread_ = std::thread(&chaos_proxy::accept_loop, this);
    LOG_INFO << "chaos: proxy on port " << port_
             << (cfg_.seed == 0 ? " (pass-through)"
                                : " (seed " + std::to_string(cfg_.seed) + ")");
}

void chaos_proxy::stop() {
    stop_.store(true);
    if (accept_thread_.joinable()) { accept_thread_.join(); }
    std::vector<std::shared_ptr<pipe_pair>> pairs;
    std::vector<std::thread> pumps;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        pairs.swap(pairs_);
        pumps.swap(pumps_);
    }
    for (const auto& pair : pairs) { pair->kill(); }
    for (auto& t : pumps) {
        if (t.joinable()) { t.join(); }
    }
    listener_.reset();
}

chaos_proxy_stats chaos_proxy::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void chaos_proxy::count(chaos_action action) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.frames;
    switch (action) {
        case chaos_action::pass: break;
        case chaos_action::split: ++stats_.splits; break;
        case chaos_action::delay: ++stats_.delays; break;
        case chaos_action::duplicate: ++stats_.duplicates; break;
        case chaos_action::garble: ++stats_.garbles; break;
        case chaos_action::truncate: ++stats_.truncates; break;
        case chaos_action::drop: ++stats_.drops; break;
    }
}

void chaos_proxy::accept_loop() {
    while (!stop_.load()) {
        ::pollfd entry{};
        entry.fd = listener_->fd();
        entry.events = POLLIN;
        ::poll(&entry, 1, 100);
        if (stop_.load()) { break; }
        for (;;) {
            std::optional<tcp_socket> inbound = listener_->accept_one();
            if (!inbound.has_value()) { break; }
            const int target = target_port_ ? target_port_() : 0;
            if (target <= 0) {
                // Target gone (e.g. coordinator between incarnations):
                // refuse, the peer's backoff will retry.
                continue;
            }
            tcp_socket upstream;
            try {
                upstream = tcp_socket::connect_to(target_host_, target);
            } catch (const io_error&) {
                std::lock_guard<std::mutex> lock(mutex_);
                ++stats_.connect_failures;
                continue;
            }
            inbound->set_nonblocking(false);
            auto pair = std::make_shared<pipe_pair>();
            pair->client = std::move(*inbound);
            pair->upstream = std::move(upstream);
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.connections;
            const std::uint64_t conn = next_stream_++;
            pairs_.push_back(pair);
            pumps_.emplace_back(&chaos_proxy::pump, this, pair, false, conn * 2);
            pumps_.emplace_back(&chaos_proxy::pump, this, pair, true, conn * 2 + 1);
        }
    }
}

void chaos_proxy::pump(std::shared_ptr<pipe_pair> pair, bool downstream,
                       std::uint64_t stream) {
    tcp_socket& src = downstream ? pair->upstream : pair->client;
    tcp_socket& dst = downstream ? pair->client : pair->upstream;
    chaos_schedule schedule(cfg_, stream);
    std::string pending;  // bytes received, not yet a complete frame
    char chunk[1 << 16];
    try {
        for (;;) {
            const tcp_socket::recv_result got = src.recv_some(chunk, sizeof chunk);
            if (got.closed) { break; }
            if (got.bytes == 0) { continue; }
            pending.append(chunk, got.bytes);
            while (pending.size() >= 4) {
                const auto byte = [&](std::size_t i) {
                    return static_cast<std::uint32_t>(static_cast<unsigned char>(pending[i]));
                };
                const std::uint32_t length =
                    (byte(0) << 24) | (byte(1) << 16) | (byte(2) << 8) | byte(3);
                if (length == 0 || length > max_frame_payload) {
                    // Desynced stream (endpoints never send this): stop
                    // interpreting, relay raw — the receiver will reject it.
                    dst.send_all(pending);
                    pending.clear();
                    break;
                }
                if (pending.size() < 4 + static_cast<std::size_t>(length)) { break; }
                std::string frame = pending.substr(0, 4 + length);
                pending.erase(0, 4 + length);

                const chaos_action action =
                    cfg_.seed == 0 ? chaos_action::pass : schedule.next_action();
                count(action);
                switch (action) {
                    case chaos_action::pass:
                        dst.send_all(frame);
                        break;
                    case chaos_action::split: {
                        const std::size_t at = schedule.split_point(frame.size());
                        dst.send_all(frame.substr(0, at));
                        // A real scheduling gap, so the halves arrive as
                        // separate reads instead of coalescing in the kernel.
                        std::this_thread::sleep_for(std::chrono::milliseconds(1));
                        dst.send_all(frame.substr(at));
                        break;
                    }
                    case chaos_action::delay:
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(schedule.delay_ms()));
                        dst.send_all(frame);
                        break;
                    case chaos_action::duplicate:
                        dst.send_all(frame);
                        dst.send_all(frame);
                        break;
                    case chaos_action::garble:
                        schedule.garble(frame);
                        dst.send_all(frame);
                        break;
                    case chaos_action::truncate:
                        dst.send_all(frame.substr(0, schedule.truncate_point(frame.size())));
                        pair->kill();
                        return;
                    case chaos_action::drop:
                        pair->kill();
                        return;
                }
            }
        }
        // Source EOF: flush whatever partial frame is buffered, then pass
        // the half-close along so the destination sees the same EOF.
        if (!pending.empty()) { dst.send_all(pending); }
        if (dst.valid()) { ::shutdown(dst.fd(), SHUT_WR); }
    } catch (const io_error&) {
        // Either side vanished mid-pump — sever the pair and bow out; the
        // endpoints' own fault handling takes over.
        pair->kill();
    }
}

}  // namespace reduce::dist
