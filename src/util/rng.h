// Deterministic pseudo-random number generation.
//
// All stochastic procedures in the project (weight init, data synthesis,
// fault-map sampling, shuffling) draw from reduce::rng so that every
// experiment is reproducible from a single integer seed. The generator is
// xoshiro256** seeded via splitmix64, which is fast, high quality, and —
// unlike std::mt19937 + std::distributions — produces identical streams on
// every platform and standard library.
#pragma once

#include <cstdint>
#include <vector>

namespace reduce {

/// One step of the splitmix64 generator; used for seeding and hash mixing.
std::uint64_t splitmix64(std::uint64_t& state);

/// Mixes two integers into a well-distributed 64-bit seed.
/// Used to derive per-chip / per-repeat seeds from a base seed.
std::uint64_t mix_seed(std::uint64_t base, std::uint64_t stream);

/// Mixes three integers into a seed: mix_seed(mix_seed(base, stream_a),
/// stream_b). Used for two-dimensional stream families — e.g. the
/// (rate_index, repeat) cells of a resilience sweep — where flattening the
/// pair into one stream id would risk collisions between grid shapes.
std::uint64_t mix_seed(std::uint64_t base, std::uint64_t stream_a, std::uint64_t stream_b);

/// xoshiro256** PRNG with convenience distributions.
///
/// Distributions are implemented in-house (not std::) so streams are
/// bit-reproducible across toolchains.
class rng {
public:
    /// Seeds the generator; two rngs with equal seeds produce equal streams.
    explicit rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /// Next raw 64-bit value.
    std::uint64_t next_u64();

    /// Uniform double in [0, 1).
    double uniform();

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi);

    /// Uniform integer in [0, n). Requires n > 0.
    std::uint64_t uniform_index(std::uint64_t n);

    /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    /// Standard normal via Box–Muller (cached second value).
    double normal();

    /// Normal with given mean and standard deviation.
    double normal(double mean, double stddev);

    /// Bernoulli trial with success probability p in [0, 1].
    bool bernoulli(double p);

    /// Fisher–Yates shuffle of a vector in place.
    template <typename T>
    void shuffle(std::vector<T>& values) {
        if (values.size() < 2) { return; }
        for (std::size_t i = values.size() - 1; i > 0; --i) {
            const std::size_t j = static_cast<std::size_t>(uniform_index(i + 1));
            std::swap(values[i], values[j]);
        }
    }

    /// Returns a random permutation of [0, n).
    std::vector<std::size_t> permutation(std::size_t n);

    /// Samples k distinct indices from [0, n) without replacement.
    /// Requires k <= n. Result is in random order.
    std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

    /// Forks an independent generator; the child stream does not overlap
    /// with the parent for practical sequence lengths.
    rng fork();

private:
    std::uint64_t state_[4];
    double cached_normal_ = 0.0;
    bool has_cached_normal_ = false;
};

}  // namespace reduce
