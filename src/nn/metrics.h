// Classification metrics.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.h"

namespace reduce {

/// Fraction of rows whose argmax matches the label, in [0, 1].
double accuracy(const tensor& logits, const std::vector<std::size_t>& labels);

/// Count of correct top-1 predictions.
std::size_t correct_count(const tensor& logits, const std::vector<std::size_t>& labels);

/// Per-variant correct top-1 counts over a variant-stacked logits tensor
/// [groups*N, classes] (variant g owns rows [g*N, (g+1)*N)); `labels` holds
/// the N labels every variant shares. The grouped-evaluation counterpart of
/// correct_count: entry g equals correct_count over variant g's block.
std::vector<std::size_t> correct_counts_grouped(const tensor& logits, std::size_t groups,
                                                const std::vector<std::size_t>& labels);

/// Row-normalized confusion matrix helper.
class confusion_matrix {
public:
    explicit confusion_matrix(std::size_t num_classes);

    /// Accumulates a batch of predictions.
    void add_batch(const tensor& logits, const std::vector<std::size_t>& labels);

    /// Raw count of (true=row, predicted=col).
    std::size_t count(std::size_t truth, std::size_t predicted) const;

    /// Overall accuracy over everything accumulated; 0 when empty.
    double overall_accuracy() const;

    /// Per-class recall (diagonal / row sum); 0 for empty classes.
    std::vector<double> per_class_recall() const;

    /// Total samples accumulated.
    std::size_t total() const { return total_; }

    std::size_t num_classes() const { return num_classes_; }

private:
    std::size_t num_classes_;
    std::vector<std::size_t> counts_;  ///< row-major [truth][predicted]
    std::size_t total_ = 0;
    std::size_t correct_ = 0;
};

}  // namespace reduce
