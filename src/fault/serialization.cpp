#include "fault/serialization.h"

#include "util/error.h"

namespace reduce {

json_value fault_grid_to_json(const fault_grid& grid) {
    json_object root;
    root.set("rows", json_value(grid.rows()));
    root.set("cols", json_value(grid.cols()));
    json_array faults;
    for (std::size_t r = 0; r < grid.rows(); ++r) {
        for (std::size_t c = 0; c < grid.cols(); ++c) {
            const pe_fault f = grid.at(r, c);
            if (!is_faulty(f)) { continue; }
            json_object entry;
            entry.set("r", json_value(r));
            entry.set("c", json_value(c));
            entry.set("kind", json_value(to_string(f)));
            faults.push_back(json_value(std::move(entry)));
        }
    }
    root.set("faults", json_value(std::move(faults)));
    return json_value(std::move(root));
}

fault_grid fault_grid_from_json(const json_value& value) {
    const json_object& root = value.as_object();
    const auto rows = static_cast<std::size_t>(root.at("rows").as_int());
    const auto cols = static_cast<std::size_t>(root.at("cols").as_int());
    fault_grid grid(rows, cols);
    for (const json_value& entry : root.at("faults").as_array()) {
        const json_object& obj = entry.as_object();
        const auto r = static_cast<std::size_t>(obj.at("r").as_int());
        const auto c = static_cast<std::size_t>(obj.at("c").as_int());
        grid.set(r, c, pe_fault_from_string(obj.at("kind").as_string()));
    }
    return grid;
}

json_value line_fault_config_to_json(const line_fault_config& cfg) {
    json_object root;
    root.set("fault_rate", json_value(cfg.fault_rate));
    root.set("row_fraction", json_value(cfg.row_fraction));
    root.set("kind_mix", json_value(to_string(cfg.kind_mix)));
    return json_value(std::move(root));
}

line_fault_config line_fault_config_from_json(const json_value& value) {
    const json_object& root = value.as_object();
    line_fault_config cfg;
    cfg.fault_rate = root.at("fault_rate").as_number();
    cfg.row_fraction = root.at("row_fraction").as_number();
    cfg.kind_mix = fault_kind_mix_from_string(root.at("kind_mix").as_string());
    return cfg;
}

json_value chip_to_json(const chip& c) {
    json_object root;
    root.set("id", json_value(c.id));
    // Seeds use the full 64-bit range; JSON numbers (doubles) would lose the
    // low bits, so serialize as a decimal string.
    root.set("seed", json_value(std::to_string(c.seed)));
    root.set("nominal_fault_rate", json_value(c.nominal_fault_rate));
    root.set("fault_map", fault_grid_to_json(c.faults));
    return json_value(std::move(root));
}

chip chip_from_json(const json_value& value) {
    const json_object& root = value.as_object();
    const std::string& seed_text = root.at("seed").as_string();
    char* end = nullptr;
    const std::uint64_t seed = std::strtoull(seed_text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || seed_text.empty()) {
        throw io_error("chip seed is not a decimal string: '" + seed_text + "'");
    }
    chip c{static_cast<std::size_t>(root.at("id").as_int()), seed,
           root.at("nominal_fault_rate").as_number(),
           fault_grid_from_json(root.at("fault_map"))};
    return c;
}

json_value fleet_to_json(const std::vector<chip>& fleet) {
    json_array chips;
    chips.reserve(fleet.size());
    for (const chip& c : fleet) { chips.push_back(chip_to_json(c)); }
    json_object root;
    root.set("chips", json_value(std::move(chips)));
    return json_value(std::move(root));
}

std::vector<chip> fleet_from_json(const json_value& value) {
    const json_object& root = value.as_object();
    std::vector<chip> fleet;
    for (const json_value& entry : root.at("chips").as_array()) {
        fleet.push_back(chip_from_json(entry));
    }
    return fleet;
}

void save_fleet(const std::string& path, const std::vector<chip>& fleet) {
    json_save_file(path, fleet_to_json(fleet));
}

std::vector<chip> load_fleet(const std::string& path) {
    return fleet_from_json(json_load_file(path));
}

}  // namespace reduce
