// JSON (de)serialization of fault maps and chips.
//
// Fault maps are the per-chip artifact that travels between fab test and the
// retraining service in the paper's flow, so they get a stable,
// human-inspectable on-disk form. Faulty PEs are stored sparsely.
#pragma once

#include <string>
#include <vector>

#include "accel/fault_grid.h"
#include "fault/chip.h"
#include "fault/models.h"
#include "util/json.h"

namespace reduce {

/// fault_grid → JSON: {"rows": R, "cols": C, "faults": [{"r","c","kind"}...]}.
json_value fault_grid_to_json(const fault_grid& grid);

/// JSON → fault_grid; throws io_error on malformed documents.
fault_grid fault_grid_from_json(const json_value& value);

/// line_fault_config ⇄ JSON ({"fault_rate","row_fraction","kind_mix"}) —
/// the model descriptor that travels alongside a line-fault map so the
/// receiving end can regenerate or extend the map deterministically.
json_value line_fault_config_to_json(const line_fault_config& cfg);
line_fault_config line_fault_config_from_json(const json_value& value);

/// chip → JSON (id, seed, nominal rate + embedded fault map).
json_value chip_to_json(const chip& c);

/// JSON → chip.
chip chip_from_json(const json_value& value);

/// Fleet convenience wrappers.
json_value fleet_to_json(const std::vector<chip>& fleet);
std::vector<chip> fleet_from_json(const json_value& value);

/// File round-trips.
void save_fleet(const std::string& path, const std::vector<chip>& fleet);
std::vector<chip> load_fleet(const std::string& path);

}  // namespace reduce
