// Minimal fixed-size worker pool for fan-out/join parallelism.
//
// Built for the fleet executor: a handful of long-running jobs (one per
// worker, each draining a shared atomic work counter) rather than a
// fine-grained task graph. Jobs may throw; the first exception is captured
// and re-thrown from wait(), after every other job has finished, so callers
// observe failures without leaking detached threads.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace reduce {

/// Resolves a thread-count request: 0 → hardware concurrency (at least 1),
/// anything else unchanged. `cap` bounds the result when non-zero (no point
/// spawning more workers than work items).
std::size_t resolve_thread_count(std::size_t requested, std::size_t cap = 0);

/// Caps a work-claim group width at an even items/worker split (and a floor
/// of 1): the shared rule of the fleet executor and the sweep engine, whose
/// grouped-evaluation blocks double as the unit workers claim — an
/// oversized group request must shrink its grouping benefit, never starve
/// worker threads of items.
std::size_t cap_group_at_fair_share(std::size_t group, std::size_t items,
                                    std::size_t workers);

/// Runs `workers` copies of `job` to completion — the shared fan-out idiom
/// of the fleet executor and the resilience sweep engine, where each copy
/// drains a common atomic work counter. With one worker the job runs inline
/// on the calling thread (no pool, exceptions propagate directly); with
/// more, a temporary pool runs the copies and wait() re-throws the first
/// failure after every copy has finished.
void run_workers(std::size_t workers, const std::function<void()>& job);

/// Fixed pool of worker threads consuming a FIFO job queue.
class thread_pool {
public:
    /// Spawns `num_threads` workers (must be >= 1).
    explicit thread_pool(std::size_t num_threads);

    thread_pool(const thread_pool&) = delete;
    thread_pool& operator=(const thread_pool&) = delete;

    /// Drains the queue, then joins all workers.
    ~thread_pool();

    /// Number of worker threads.
    std::size_t size() const { return workers_.size(); }

    /// Enqueues a job. Must not be called after the destructor has begun.
    void submit(std::function<void()> job);

    /// Blocks until every submitted job has finished. If any job threw, the
    /// first captured exception is re-thrown here (subsequent calls do not
    /// re-throw it again).
    void wait();

private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable work_available_;
    std::condition_variable all_done_;
    std::size_t in_flight_ = 0;
    bool stopping_ = false;
    std::exception_ptr first_error_;
};

}  // namespace reduce
