// Tests for the FAT trainer: epoch accounting, trajectories, eval grids,
// and the epochs-to-target helpers.
#include <gtest/gtest.h>

#include <cmath>

#include "core/workload.h"
#include "fault/mask_builder.h"
#include "fault/models.h"
#include "util/error.h"

namespace reduce {
namespace {

class TrainerFixture : public ::testing::Test {
protected:
    static void SetUpTestSuite() { shared_ = new workload(make_standard_workload(
        make_test_workload_config())); }
    static void TearDownTestSuite() {
        delete shared_;
        shared_ = nullptr;
    }

    workload& w() { return *shared_; }

    static workload* shared_;
};

workload* TrainerFixture::shared_ = nullptr;

TEST(EvalGrid, FineThenCoarse) {
    const std::vector<double> grid = make_eval_grid(3.0, 1.0, 0.25, 1.0);
    // 0.25, 0.5, 0.75, 1.0, then 2.0, 3.0
    ASSERT_EQ(grid.size(), 6u);
    EXPECT_DOUBLE_EQ(grid[0], 0.25);
    EXPECT_DOUBLE_EQ(grid[3], 1.0);
    EXPECT_DOUBLE_EQ(grid[4], 2.0);
    EXPECT_DOUBLE_EQ(grid.back(), 3.0);
}

TEST(EvalGrid, AlwaysEndsAtBudget) {
    const std::vector<double> grid = make_eval_grid(2.3, 0.5, 0.25, 1.0);
    EXPECT_NEAR(grid.back(), 2.3, 1e-9);
}

TEST(EvalGrid, PointsAreExactStepMultiples) {
    // Regression: the grid was built by a running sum, so step 0.1 drifted
    // (0.1 + 0.1 + 0.1 → 0.30000000000000004) and checkpoint values stopped
    // comparing exactly across trajectories and the grouped/serial paths.
    // Every fine point must be EXACTLY i * fine_step, bit for bit.
    const std::vector<double> grid = make_eval_grid(1.0, 1.0, 0.1, 0.5);
    ASSERT_EQ(grid.size(), 10u);
    for (std::size_t i = 0; i < grid.size(); ++i) {
        EXPECT_EQ(grid[i], static_cast<double>(i + 1) * 0.1) << "point " << i;
    }
    // Coarse points anchor on the last fine point with one rounded product.
    const std::vector<double> mixed = make_eval_grid(2.0, 0.3, 0.1, 0.7);
    EXPECT_EQ(mixed[0], 1.0 * 0.1);
    EXPECT_EQ(mixed[1], 2.0 * 0.1);
    EXPECT_EQ(mixed[2], 3.0 * 0.1);
    EXPECT_EQ(mixed[3], 3.0 * 0.1 + 1.0 * 0.7);
    EXPECT_EQ(mixed[4], 3.0 * 0.1 + 2.0 * 0.7);
    EXPECT_EQ(mixed.back(), 2.0);
}

TEST(EvalGrid, RejectsBadArgs) {
    EXPECT_THROW(make_eval_grid(0.0, 1.0, 0.1, 0.5), error);
    EXPECT_THROW(make_eval_grid(1.0, 1.0, 0.0, 0.5), error);
    EXPECT_THROW(make_eval_grid(1.0, -1.0, 0.1, 0.5), error);
}

TEST(EpochsToReach, FindsFirstCrossing) {
    const std::vector<training_point> traj = {
        {0.0, 0.5}, {0.5, 0.85}, {1.0, 0.9}, {2.0, 0.95}};
    EXPECT_DOUBLE_EQ(epochs_to_reach(traj, 0.4).value(), 0.0);
    EXPECT_DOUBLE_EQ(epochs_to_reach(traj, 0.86).value(), 1.0);
    EXPECT_DOUBLE_EQ(epochs_to_reach(traj, 0.95).value(), 2.0);
    EXPECT_FALSE(epochs_to_reach(traj, 0.99).has_value());
}

TEST(AccuracyAtEpochs, StepFunctionSemantics) {
    const std::vector<training_point> traj = {{0.0, 0.5}, {1.0, 0.8}, {2.0, 0.9}};
    EXPECT_DOUBLE_EQ(accuracy_at_epochs(traj, 0.0), 0.5);
    EXPECT_DOUBLE_EQ(accuracy_at_epochs(traj, 0.5), 0.5);
    EXPECT_DOUBLE_EQ(accuracy_at_epochs(traj, 1.0), 0.8);
    EXPECT_DOUBLE_EQ(accuracy_at_epochs(traj, 5.0), 0.9);
}

TEST(AccuracyAtEpochs, RequiresEpochZeroStart) {
    const std::vector<training_point> traj = {{1.0, 0.8}};
    EXPECT_THROW(accuracy_at_epochs(traj, 1.0), error);
    EXPECT_THROW(accuracy_at_epochs({}, 1.0), error);
}

TEST_F(TrainerFixture, ZeroBudgetJustEvaluates) {
    restore_parameters(w().model->parameters(), w().pretrained);
    fault_aware_trainer trainer(*w().model, w().train_data, w().test_data, w().trainer_cfg);
    const fat_result r = trainer.train(0.0);
    EXPECT_EQ(r.steps_run, 0u);
    EXPECT_DOUBLE_EQ(r.epochs_run, 0.0);
    ASSERT_EQ(r.trajectory.size(), 1u);
    EXPECT_NEAR(r.final_accuracy, w().clean_accuracy, 1e-12);
}

TEST_F(TrainerFixture, FractionalEpochRunsFewSteps) {
    restore_parameters(w().model->parameters(), w().pretrained);
    fault_aware_trainer trainer(*w().model, w().train_data, w().test_data, w().trainer_cfg);
    const fat_result r = trainer.train(0.05);
    EXPECT_GE(r.steps_run, 1u);
    data_loader probe(w().train_data, w().trainer_cfg.batch_size, 1);
    EXPECT_LE(r.steps_run, probe.steps_per_epoch());
    EXPECT_GT(r.epochs_run, 0.0);
    EXPECT_LE(r.epochs_run, 1.0);
}

TEST_F(TrainerFixture, TrajectoryCheckpointsMatchGrid) {
    restore_parameters(w().model->parameters(), w().pretrained);
    fault_aware_trainer trainer(*w().model, w().train_data, w().test_data, w().trainer_cfg);
    const fat_result r = trainer.train(1.0, {0.25, 0.5, 0.75});
    // epoch-0 + three checkpoints + budget.
    ASSERT_EQ(r.trajectory.size(), 5u);
    EXPECT_DOUBLE_EQ(r.trajectory.front().epochs, 0.0);
    // Epoch positions are step-quantized but strictly increasing.
    for (std::size_t i = 1; i < r.trajectory.size(); ++i) {
        EXPECT_GT(r.trajectory[i].epochs, r.trajectory[i - 1].epochs);
    }
    EXPECT_NEAR(r.trajectory.back().epochs, 1.0, 1e-9);
}

TEST_F(TrainerFixture, DeterministicAcrossCalls) {
    restore_parameters(w().model->parameters(), w().pretrained);
    fault_aware_trainer trainer(*w().model, w().train_data, w().test_data, w().trainer_cfg);
    const fat_result a = trainer.train(0.5);
    restore_parameters(w().model->parameters(), w().pretrained);
    const fat_result b = trainer.train(0.5);
    EXPECT_DOUBLE_EQ(a.final_accuracy, b.final_accuracy);
    EXPECT_EQ(a.steps_run, b.steps_run);
}

TEST_F(TrainerFixture, MaskedTrainingKeepsPrunedWeightsZero) {
    restore_parameters(w().model->parameters(), w().pretrained);
    random_fault_config fc;
    fc.fault_rate = 0.2;
    const fault_grid faults = generate_random_faults(w().array, fc, 5);
    attach_fault_masks(*w().model, w().array, faults);

    fault_aware_trainer trainer(*w().model, w().train_data, w().test_data, w().trainer_cfg);
    (void)trainer.train(1.0);
    for (parameter* p : w().model->parameters()) {
        if (!p->has_mask()) { continue; }
        for (std::size_t i = 0; i < p->value.numel(); ++i) {
            if (p->mask[i] == 0.0f) {
                ASSERT_EQ(p->value[i], 0.0f) << "pruned weight drifted from zero";
            }
        }
    }
    clear_fault_masks(*w().model);
}

TEST_F(TrainerFixture, FatRecoversMaskedAccuracy) {
    restore_parameters(w().model->parameters(), w().pretrained);
    random_fault_config fc;
    fc.fault_rate = 0.25;
    const fault_grid faults = generate_random_faults(w().array, fc, 6);
    attach_fault_masks(*w().model, w().array, faults);

    fault_aware_trainer trainer(*w().model, w().train_data, w().test_data, w().trainer_cfg);
    const double before = trainer.evaluate();
    const fat_result r = trainer.train(3.0);
    EXPECT_GT(r.final_accuracy, before) << "FAT failed to improve a damaged model";
    clear_fault_masks(*w().model);
}

TEST_F(TrainerFixture, NegativeBudgetRejected) {
    fault_aware_trainer trainer(*w().model, w().train_data, w().test_data, w().trainer_cfg);
    EXPECT_THROW(trainer.train(-1.0), error);
}

TEST_F(TrainerFixture, ConfigValidation) {
    fat_config bad = w().trainer_cfg;
    bad.batch_size = 0;
    EXPECT_THROW(
        fault_aware_trainer(*w().model, w().train_data, w().test_data, bad), error);
    bad = w().trainer_cfg;
    bad.learning_rate = 0.0;
    EXPECT_THROW(
        fault_aware_trainer(*w().model, w().train_data, w().test_data, bad), error);
}

}  // namespace
}  // namespace reduce
