#include "dist/worker.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>

#include "fault/serialization.h"
#include "util/error.h"
#include "util/log.h"
#include "util/thread_pool.h"

namespace reduce::dist {

namespace {

using clock = std::chrono::steady_clock;

/// Jitter seed of a worker: explicit, or FNV-1a of its name (not std::hash,
/// which differs across standard libraries and would break reproducible
/// backoff schedules).
std::uint64_t derive_backoff_seed(const worker_config& cfg) {
    if (cfg.backoff_seed != 0) { return cfg.backoff_seed; }
    std::uint64_t hash = 14695981039346656037ULL;
    for (const char c : cfg.name) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ULL;
    }
    return hash | 1;  // never the disabled sentinel
}

/// Dials the coordinator under a total-deadline budget, re-resolving the
/// port (port_resolver) and backing off between attempts. Shared by the
/// initial connect and the mid-job reconnect path; `phase` labels logs and
/// the final io_error.
tcp_socket connect_with_backoff(const worker_config& cfg, int deadline_ms, rng& jitter,
                                const char* phase) {
    const clock::time_point deadline =
        clock::now() + std::chrono::milliseconds(std::max(1, deadline_ms));
    for (int attempt = 0;; ++attempt) {
        const int port = cfg.port_resolver ? cfg.port_resolver() : cfg.port;
        try {
            if (port <= 0) { throw io_error("coordinator port not resolvable yet"); }
            return tcp_socket::connect_to(cfg.host, port);
        } catch (const io_error& e) {
            const int delay =
                backoff_delay_ms(cfg.backoff_initial_ms, cfg.backoff_max_ms, attempt, jitter);
            if (clock::now() + std::chrono::milliseconds(delay) >= deadline) {
                throw io_error(std::string(phase) + " budget of " +
                               std::to_string(deadline_ms) + " ms exhausted: " + e.what());
            }
            LOG_DEBUG << "worker '" << cfg.name << "': " << phase << " attempt " << attempt + 1
                      << " failed (" << e.what() << "); retrying in " << delay << " ms";
            std::this_thread::sleep_for(std::chrono::milliseconds(delay));
        }
    }
}

std::uint64_t parse_lease(const json_object& work) {
    const std::string& text = work.at("lease").as_string();
    try {
        std::size_t pos = 0;
        const unsigned long long value = std::stoull(text, &pos);
        if (pos != text.size()) { throw std::invalid_argument("trailing characters"); }
        return value;
    } catch (const std::exception&) {
        throw io_error("malformed lease id '" + text + "'");
    }
}

/// How one session over one socket ended.
enum class session_end {
    shutdown,   ///< coordinator declared the job complete
    rejected,   ///< handshake refused — retrying would refuse again
    died,       ///< die_after_units fired
    transport,  ///< socket failed mid-session — candidate for resume
};

}  // namespace

int backoff_delay_ms(int initial_ms, int max_ms, int attempt, rng& jitter) {
    const long long initial = std::max(1, initial_ms);
    const long long cap = std::max(initial, static_cast<long long>(max_ms));
    long long delay = initial;
    for (int i = 0; i < attempt && delay < cap; ++i) { delay *= 2; }
    delay = std::min(delay, cap);
    const long long lo = std::max<long long>(1, delay / 2);
    return static_cast<int>(
        lo + static_cast<long long>(
                 jitter.uniform_index(static_cast<std::uint64_t>(delay - lo + 1))));
}

worker::worker(worker_config cfg, const sequential& model, const model_snapshot& pretrained,
               const dataset& train_data, const dataset& test_data,
               const array_config& array, fat_config trainer_cfg,
               resilience_config sweep_cfg)
    : cfg_(std::move(cfg)),
      model_(model),
      pretrained_(pretrained),
      train_data_(train_data),
      test_data_(test_data),
      array_(array),
      trainer_cfg_(trainer_cfg),
      sweep_cfg_(std::move(sweep_cfg)) {}

worker_report worker::run() {
    worker_report report;
    const std::string fingerprint =
        cfg_.fingerprint.empty() ? resilience_fingerprint(sweep_cfg_) : cfg_.fingerprint;
    rng jitter(derive_backoff_seed(cfg_));

    const std::vector<sweep_cell> grid = enumerate_sweep_cells(sweep_cfg_);
    std::unique_ptr<resilience_analyzer> analyzer;
    std::unique_ptr<chip_tuner> tuner;
    const thread_budget budget = resolve_thread_budget(1, cfg_.gemm_threads, 1);
    std::size_t units_received = 0;
    // A computed result whose send failed: carried across the reconnect and
    // resent first thing in the next session (the coordinator routes it by
    // lease, or drops it as a stray and re-executes the unit — same bytes
    // either way).
    std::optional<json_value> unsent_result;

    // One admitted session over one socket. Returns how it ended; transport
    // endings leave `unsent_result` primed for the next session. `admitted`
    // reports whether the handshake completed — a session that dies earlier
    // must keep consuming its outage's reconnect budget, or a half-alive
    // endpoint (a chaos proxy whose coordinator is gone accepts every dial
    // and then drops it) would grant a fresh budget per dial, forever.
    const auto run_session = [&](tcp_socket& sock, bool resumed,
                                 bool& admitted) -> session_end {
        // The heartbeat thread and the main loop share the socket for
        // writes; reads stay on the main thread only.
        std::mutex send_mutex;
        const auto send_message = [&](const json_value& message) {
            std::lock_guard<std::mutex> lock(send_mutex);
            sock.send_all(encode_frame(message));
        };
        frame_decoder decoder;
        const auto read_message = [&]() -> std::optional<json_value> {
            for (;;) {
                if (std::optional<json_value> message = decoder.next()) { return message; }
                char buf[16384];
                const tcp_socket::recv_result r = sock.recv_some(buf, sizeof buf);
                if (r.closed) { return std::nullopt; }
                decoder.feed(buf, r.bytes);
            }
        };

        std::optional<json_value> first;
        try {
            send_message(make_hello(fingerprint, cfg_.name, resumed));
            first = read_message();
        } catch (const io_error&) {
            first.reset();
        }
        if (!first.has_value()) { return session_end::transport; }
        const std::string first_type = message_type(*first);
        if (first_type == "reject") {
            report.rejected = true;
            report.reject_reason = first->as_object().at("reason").as_string();
            LOG_WARN << "worker '" << cfg_.name << "': rejected by the coordinator: "
                     << report.reject_reason;
            return session_end::rejected;
        }
        REDUCE_CHECK(first_type == "welcome",
                     "worker expected welcome or reject, got '" << first_type << "'");
        const json_object& welcome = first->as_object();
        REDUCE_CHECK(welcome.at("version").as_int() == protocol_version,
                     "coordinator speaks protocol version " << welcome.at("version").as_int()
                                                            << ", this worker "
                                                            << protocol_version);
        const int heartbeat_ms = static_cast<int>(welcome.at("heartbeat_ms").as_int());
        const bool want_snapshots = welcome.at("want_snapshots").as_bool();
        admitted = true;
        if (resumed) {
            ++report.reconnects;
            LOG_INFO << "worker '" << cfg_.name << "': session resumed ("
                     << welcome.at("job").as_string() << " job)";
        } else {
            LOG_INFO << "worker '" << cfg_.name << "': admitted to a "
                     << welcome.at("job").as_string() << " job";
        }

        // Heartbeats keep the active lease alive while the main thread is
        // deep in a training computation. Per-session: the thread dies with
        // its socket, so a resumed session can never heartbeat an old lease.
        std::mutex hb_mutex;
        std::condition_variable hb_cv;
        bool hb_stop = false;
        std::atomic<std::uint64_t> hb_lease{0};
        std::thread heartbeats([&] {
            std::unique_lock<std::mutex> lock(hb_mutex);
            const auto interval = std::chrono::milliseconds(std::max(1, heartbeat_ms));
            while (!hb_cv.wait_for(lock, interval, [&] { return hb_stop; })) {
                const std::uint64_t lease = hb_lease.load(std::memory_order_relaxed);
                if (lease == 0) { continue; }
                try {
                    std::lock_guard<std::mutex> send_lock(send_mutex);
                    if (!sock.valid()) { return; }
                    sock.send_all(encode_frame(make_heartbeat(lease)));
                } catch (const io_error&) {
                    return;  // the main loop will notice the broken connection
                }
            }
        });
        const auto stop_heartbeats = [&] {
            {
                std::lock_guard<std::mutex> lock(hb_mutex);
                hb_stop = true;
            }
            hb_cv.notify_all();
            heartbeats.join();
        };

        try {
            if (unsent_result.has_value()) {
                send_message(*unsent_result);
                unsent_result.reset();
                ++report.results_resent;
            }
            for (;;) {
                send_message(make_request_work());
                std::optional<json_value> message = read_message();
                if (!message.has_value()) {
                    stop_heartbeats();
                    return session_end::transport;
                }
                const std::string type = message_type(*message);
                if (type == "shutdown") {
                    report.shutdown_received = true;
                    report.shutdown_reason = message->as_object().at("reason").as_string();
                    stop_heartbeats();
                    return session_end::shutdown;
                }
                if (type != "work") {
                    throw io_error("worker expected work or shutdown, got '" + type + "'");
                }
                ++units_received;
                if (cfg_.die_after_units != 0 && units_received >= cfg_.die_after_units) {
                    // Injected mid-lease death: vanish with the lease held,
                    // no result and no goodbye — what a SIGKILLed process
                    // looks like from the coordinator's side.
                    LOG_WARN << "worker '" << cfg_.name
                             << "': failure injection - dying mid-lease";
                    report.died = true;
                    {
                        std::lock_guard<std::mutex> lock(send_mutex);
                        sock.close();
                    }
                    stop_heartbeats();
                    return session_end::died;
                }
                const json_object& work = message->as_object();
                const std::uint64_t lease = parse_lease(work);
                hb_lease.store(lease, std::memory_order_relaxed);
                const std::string& kind = work.at("kind").as_string();
                if (kind == "sweep_cells") {
                    std::vector<sweep_cell> cells;
                    for (const json_value& index : work.at("cells").as_array()) {
                        const auto i = static_cast<std::size_t>(index.as_int());
                        if (i >= grid.size()) {
                            throw io_error("work unit cell index " + std::to_string(i) +
                                           " outside the sweep grid");
                        }
                        cells.push_back(grid[i]);
                    }
                    if (!analyzer) {
                        analyzer = std::make_unique<resilience_analyzer>(
                            model_, pretrained_, train_data_, test_data_, array_,
                            trainer_cfg_);
                    }
                    sweep_options opts;
                    opts.threads = 1;
                    opts.gemm_threads = cfg_.gemm_threads;
                    const resilience_table shard =
                        analyzer->analyze_cells(sweep_cfg_, cells, opts);
                    ++report.sweep_units;
                    report.cells += cells.size();
                    // Stash-then-send: if the send throws, the result rides
                    // the reconnect instead of being recomputed.
                    unsent_result = make_sweep_result(lease, shard.to_json());
                    hb_lease.store(0, std::memory_order_relaxed);
                    send_message(*unsent_result);
                    unsent_result.reset();
                } else if (kind == "fleet_chip") {
                    const chip c = chip_from_json(work.at("chip"));
                    const epoch_allocation alloc =
                        allocation_from_json(work.at("allocation"));
                    const double constraint = work.at("constraint").as_number();
                    const double effective_rate = work.at("effective_rate").as_number();
                    if (!tuner) {
                        tuner = std::make_unique<chip_tuner>(model_, pretrained_, train_data_,
                                                             test_data_, array_,
                                                             trainer_cfg_);
                        tuner->set_capture_tuned(want_snapshots);
                        // The timeline rides the shared sweep config (part
                        // of the fingerprint handshake), so a worker and the
                        // --local path replay identical per-chip events.
                        tuner->set_scenario(sweep_cfg_.scenario);
                    }
                    const scoped_intra_op_threads intra(budget.gemm_threads);
                    const chip_outcome outcome =
                        tuner->tune(c, alloc, constraint, effective_rate);
                    std::string snapshot;
                    if (want_snapshots) { snapshot = snapshot_to_bytes(tuner->take_tuned()); }
                    ++report.chips;
                    unsent_result = make_chip_result(lease, outcome, snapshot);
                    hb_lease.store(0, std::memory_order_relaxed);
                    send_message(*unsent_result);
                    unsent_result.reset();
                } else {
                    throw io_error("unknown work kind '" + kind + "'");
                }
            }
        } catch (const io_error& e) {
            // Transport endings (coordinator gone, garbage frame) are
            // candidates for resume, not exceptions — a worker outliving
            // its coordinator is normal.
            LOG_WARN << "worker '" << cfg_.name << "': connection error: " << e.what();
            stop_heartbeats();
            return session_end::transport;
        } catch (...) {
            stop_heartbeats();
            throw;
        }
    };

    // Initial connect: exhaustion throws (the pre-resume contract — a worker
    // that never finds its coordinator is misconfigured, not unlucky).
    tcp_socket sock = connect_with_backoff(cfg_, cfg_.connect_deadline_ms, jitter, "connect");
    bool resumed = false;
    // An "outage" spans everything from a transport failure until the next
    // ADMITTED session: failed dials, and dials that connect but die before
    // the welcome. One reconnect budget and one growing backoff schedule
    // cover the whole outage, so no endpoint behavior can stall a worker
    // past reconnect_deadline_ms per outage.
    std::optional<clock::time_point> outage_deadline;
    int outage_attempt = 0;
    for (;;) {
        bool admitted = false;
        const session_end end = run_session(sock, resumed, admitted);
        if (end != session_end::transport) { break; }
        if (cfg_.reconnect_deadline_ms <= 0) {
            report.connection_lost = true;
            break;
        }
        if (admitted || !outage_deadline.has_value()) {
            outage_deadline =
                clock::now() +
                std::chrono::milliseconds(std::max(1, cfg_.reconnect_deadline_ms));
            outage_attempt = 0;
        }
        // Back off before redialing even when the last dial "succeeded" —
        // the session may have lived microseconds.
        const int delay = backoff_delay_ms(cfg_.backoff_initial_ms, cfg_.backoff_max_ms,
                                           outage_attempt++, jitter);
        const int remaining = static_cast<int>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                                   *outage_deadline - clock::now())
                                                   .count());
        if (delay >= remaining) {
            LOG_WARN << "worker '" << cfg_.name << "': giving up on the job: reconnect budget of "
                     << cfg_.reconnect_deadline_ms << " ms exhausted";
            report.connection_lost = true;
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
        try {
            sock = connect_with_backoff(cfg_, remaining - delay, jitter, "reconnect");
        } catch (const io_error& e) {
            LOG_WARN << "worker '" << cfg_.name << "': giving up on the job: " << e.what();
            report.connection_lost = true;
            break;
        }
        resumed = true;
    }
    LOG_INFO << "worker '" << cfg_.name << "': done (" << report.cells << " cells, "
             << report.chips << " chips, " << report.reconnects << " reconnects)";
    return report;
}

}  // namespace reduce::dist
