// Parameter snapshot (de)serialization.
//
// Two uses in the Reduce pipeline:
//  * snapshotting the pre-trained model so every per-chip retraining run
//    starts from identical weights (the paper retrains the *given* DNN per
//    chip, not a chain), and
//  * persisting tuned models for distribution to their chips.
//
// The binary format is versioned by its magic line:
//   "RDNN1\n" — u64 parameter count, then per parameter: u32 name length +
//               name bytes, u32 rank, u64 extents, f32 data.
//   "RDNN2\n" — the RDNN1 payload followed by u64 state-buffer count, then
//               per buffer: u32 rank, u64 extents, f32 data (module state
//               buffers in model order — batch-norm running statistics).
// save_snapshot writes RDNN1 when the snapshot carries no state (so
// parameter-only models keep producing files older readers understand) and
// RDNN2 otherwise; load_snapshot reads both, leaving `state` empty for
// RDNN1 files.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "nn/module.h"

namespace reduce {

/// In-memory snapshot of parameter values (no masks/grads) plus — when
/// captured via snapshot_model — the module state buffers (batch-norm
/// running statistics) that restore_parameters does not cover. A deployable
/// BN model is parameters AND running statistics; parameters-only snapshots
/// of normalizing models evaluate with whatever statistics the target model
/// already had (the ROADMAP "snapshots exclude batch-norm statistics" gap).
struct model_snapshot {
    std::vector<std::string> names;
    std::vector<tensor> values;
    /// Module state buffers in model order (empty for parameter-only
    /// captures and for models without stateful layers).
    std::vector<tensor> state;

    /// Number of parameters captured.
    std::size_t size() const { return values.size(); }
};

/// Captures the current values of all parameters (state left empty).
model_snapshot snapshot_parameters(const std::vector<parameter*>& params);

/// Restores values captured by snapshot_parameters into the same model
/// (shapes and order must match; throws io_error otherwise). Masks,
/// gradients, and module state buffers are left untouched.
void restore_parameters(const std::vector<parameter*>& params, const model_snapshot& snapshot);

/// Captures parameters AND module state buffers — the full deployable state
/// of a tuned model (what fleet model sinks receive).
model_snapshot snapshot_model(sequential& model);

/// Restores a snapshot into `model`: parameters always; state buffers when
/// the snapshot carries them (count and shapes must then match — throws
/// io_error otherwise). A parameters-only snapshot — e.g. loaded from an
/// RDNN1 file — leaves the model's current state buffers untouched.
void restore_model(sequential& model, const model_snapshot& snapshot);

/// Writes a snapshot to a binary file; throws io_error on failure. Emits
/// RDNN1 for state-free snapshots, RDNN2 otherwise (see the format note).
void save_snapshot(const std::string& path, const model_snapshot& snapshot);

/// Reads a snapshot from a binary file (RDNN1 or RDNN2); throws io_error on
/// malformed files.
model_snapshot load_snapshot(const std::string& path);

/// Stream overloads sharing the file implementation byte for byte — how
/// RDNN snapshots cross a socket (the distributed worker serializes into a
/// buffer, never a temp file). The stream must be binary-clean; failure
/// states throw io_error.
void save_snapshot(std::ostream& os, const model_snapshot& snapshot);
model_snapshot load_snapshot(std::istream& is);

/// Byte-buffer convenience wrappers over the stream overloads: the exact
/// bytes save_snapshot(path, ...) would put on disk.
std::string snapshot_to_bytes(const model_snapshot& snapshot);
model_snapshot snapshot_from_bytes(const std::string& bytes);

}  // namespace reduce
