#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "util/error.h"
#include "util/log.h"

namespace reduce {

namespace {

/// Set while the calling thread executes a parallel_for body — on the
/// caller thread and on the intra-op pool workers alike. Both parallel_for
/// and run_workers refuse to start a new parallel region under it (the
/// nesting rule of thread_pool.h).
thread_local bool in_parallel_region = false;

/// RAII flag for exception safety around body execution.
struct region_guard {
    region_guard() { in_parallel_region = true; }
    ~region_guard() { in_parallel_region = false; }
};

/// Process-wide intra-op budget (resolved: never 0). Relaxed atomics are
/// enough — the budget is a performance hint read at kernel entry, and
/// results are budget-independent by construction.
std::atomic<std::size_t> intra_op_budget{1};

/// One parallel_for invocation: a chunk counter every participant (caller +
/// pool workers) drains, and a completion count the caller waits on. The
/// pool holds shared_ptr references, so a task outlives any late worker
/// that picks its queue entry up after the caller already finished it.
struct parallel_task {
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::size_t n = 0;
    std::size_t chunks = 0;
    std::atomic<std::size_t> next{0};

    std::mutex mutex;
    std::condition_variable done;
    std::size_t finished = 0;  ///< guarded by mutex
    std::exception_ptr first_error;

    /// Balanced contiguous split: chunk `index` of `chunks` over [0, n).
    std::pair<std::size_t, std::size_t> range(std::size_t index) const {
        const std::size_t base = n / chunks;
        const std::size_t rem = n % chunks;
        const std::size_t begin = index * base + std::min(index, rem);
        return {begin, begin + base + (index < rem ? 1 : 0)};
    }

    /// Claims and runs chunks until none remain. Safe to call from any
    /// number of threads; each chunk runs exactly once.
    void drain() {
        for (;;) {
            const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
            if (index >= chunks) { return; }
            const auto [begin, end] = range(index);
            try {
                region_guard guard;
                (*body)(begin, end);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mutex);
                if (!first_error) { first_error = std::current_exception(); }
            }
            {
                std::lock_guard<std::mutex> lock(mutex);
                ++finished;
            }
            done.notify_one();
        }
    }
};

/// The persistent intra-op pool. Grows lazily to the largest budget ever
/// requested and never shrinks (idle workers cost a blocked futex each);
/// queue entries are help OFFERS, not obligations — a task completes once
/// its chunk counter is exhausted, regardless of how many offers were
/// consumed, so dropping stale entries at shutdown is safe.
class intra_op_pool {
public:
    static intra_op_pool& instance() {
        static intra_op_pool pool;
        return pool;
    }

    /// Posts `copies` help offers for `task` and grows the pool to at least
    /// `copies` workers.
    void offer(const std::shared_ptr<parallel_task>& task, std::size_t copies) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            while (workers_.size() < copies) {
                workers_.emplace_back([this] { worker_loop(); });
            }
            for (std::size_t i = 0; i < copies; ++i) { queue_.push_back(task); }
        }
        if (copies == 1) {
            available_.notify_one();
        } else {
            available_.notify_all();
        }
    }

private:
    intra_op_pool() = default;

    ~intra_op_pool() {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stopping_ = true;
        }
        available_.notify_all();
        for (std::thread& worker : workers_) {
            if (worker.joinable()) { worker.join(); }
        }
    }

    void worker_loop() {
        for (;;) {
            std::shared_ptr<parallel_task> task;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
                if (queue_.empty()) { return; }  // stopping
                task = std::move(queue_.front());
                queue_.pop_front();
            }
            task->drain();
        }
    }

    std::vector<std::thread> workers_;
    std::deque<std::shared_ptr<parallel_task>> queue_;
    std::mutex mutex_;
    std::condition_variable available_;
    bool stopping_ = false;
};

}  // namespace

std::size_t resolve_thread_count(std::size_t requested, std::size_t cap) {
    std::size_t count = requested;
    if (count == 0) {
        count = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    if (cap > 0) { count = std::min(count, cap); }
    return std::max<std::size_t>(1, count);
}

std::size_t cap_group_at_fair_share(std::size_t group, std::size_t items,
                                    std::size_t workers) {
    const std::size_t fair = workers == 0 ? items : (items + workers - 1) / workers;
    return std::min(std::max<std::size_t>(1, group), std::max<std::size_t>(1, fair));
}

thread_budget resolve_thread_budget(std::size_t fleet_workers, std::size_t gemm_threads,
                                    std::size_t work_items) {
    thread_budget budget;
    budget.fleet_workers = resolve_thread_count(fleet_workers, work_items);
    budget.gemm_threads = resolve_thread_count(gemm_threads);
    const std::size_t hardware =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
    if (budget.fleet_workers > 1 &&
        budget.fleet_workers * budget.gemm_threads > hardware) {
        const std::size_t shrunk =
            std::max<std::size_t>(1, hardware / budget.fleet_workers);
        if (shrunk < budget.gemm_threads) {
            LOG_WARN << "thread budget: " << budget.fleet_workers << " fleet workers x "
                     << budget.gemm_threads << " gemm threads oversubscribes "
                     << hardware << " hardware threads; shrinking gemm threads to "
                     << shrunk;
            budget.gemm_threads = shrunk;
        }
    }
    return budget;
}

std::size_t set_intra_op_threads(std::size_t threads) {
    return intra_op_budget.exchange(resolve_thread_count(threads),
                                    std::memory_order_relaxed);
}

std::size_t intra_op_threads() {
    return intra_op_budget.load(std::memory_order_relaxed);
}

bool in_intra_op_region() { return in_parallel_region; }

void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
    if (n == 0) { return; }
    REDUCE_CHECK(!in_parallel_region,
                 "parallel_for invoked re-entrantly from inside a parallel region; "
                 "parallel regions do not nest (see the nesting rule in "
                 "util/thread_pool.h)");
    const std::size_t threads = std::min(intra_op_threads(), n);
    if (threads <= 1) {
        // Serial inline — still a region, so nested calls fail at ANY
        // budget instead of only when a pool is involved.
        region_guard guard;
        body(0, n);
        return;
    }
    auto task = std::make_shared<parallel_task>();
    task->body = &body;
    task->n = n;
    task->chunks = threads;
    intra_op_pool::instance().offer(task, threads - 1);
    task->drain();  // the caller always participates — deadlock-free
    std::unique_lock<std::mutex> lock(task->mutex);
    task->done.wait(lock, [&] { return task->finished == task->chunks; });
    if (task->first_error) { std::rethrow_exception(task->first_error); }
}

void run_workers(std::size_t workers, const std::function<void()>& job) {
    REDUCE_CHECK(workers >= 1, "run_workers needs at least one worker");
    REDUCE_CHECK(!in_parallel_region,
                 "run_workers invoked from inside a parallel_for body; parallel "
                 "regions do not nest (see the nesting rule in util/thread_pool.h)");
    if (workers == 1) {
        job();
        return;
    }
    thread_pool pool(workers);
    for (std::size_t i = 0; i < workers; ++i) { pool.submit(job); }
    pool.wait();
}

thread_pool::thread_pool(std::size_t num_threads) {
    REDUCE_CHECK(num_threads >= 1, "thread pool needs at least one worker");
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

thread_pool::~thread_pool() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_available_.notify_all();
    for (std::thread& worker : workers_) {
        if (worker.joinable()) { worker.join(); }
    }
}

void thread_pool::submit(std::function<void()> job) {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        REDUCE_CHECK(!stopping_, "submit on a stopping thread pool");
        queue_.push_back(std::move(job));
    }
    work_available_.notify_one();
}

void thread_pool::wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
    if (first_error_) {
        std::exception_ptr error = first_error_;
        first_error_ = nullptr;
        std::rethrow_exception(error);
    }
}

void thread_pool::worker_loop() {
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) { return; }  // stopping with nothing left to do
            job = std::move(queue_.front());
            queue_.pop_front();
            ++in_flight_;
        }
        try {
            job();
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!first_error_) { first_error_ = std::current_exception(); }
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --in_flight_;
        }
        all_done_.notify_all();
    }
}

}  // namespace reduce
