// Micro-benchmarks for the accelerator substrate: fault-map sampling,
// mask construction, functional systolic execution, FAM assignment, and
// the analytic performance model.
#include <benchmark/benchmark.h>

#include "accel/systolic_array.h"
#include "fault/fam.h"
#include "fault/mask_builder.h"
#include "fault/models.h"
#include "nn/layers.h"
#include "tensor/init.h"
#include "util/rng.h"

namespace reduce {
namespace {

array_config sized_array(std::size_t n) {
    array_config cfg;
    cfg.rows = n;
    cfg.cols = n;
    return cfg;
}

void bm_fault_injection_exact(benchmark::State& state) {
    const array_config cfg = sized_array(static_cast<std::size_t>(state.range(0)));
    random_fault_config fc;
    fc.fault_rate = 0.1;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(generate_random_faults(cfg, fc, seed++));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(cfg.pe_count()));
}
BENCHMARK(bm_fault_injection_exact)->Arg(64)->Arg(256);

void bm_fault_injection_bernoulli(benchmark::State& state) {
    const array_config cfg = sized_array(static_cast<std::size_t>(state.range(0)));
    random_fault_config fc;
    fc.fault_rate = 0.1;
    fc.count_mode = fault_count_mode::bernoulli;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(generate_random_faults(cfg, fc, seed++));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(cfg.pe_count()));
}
BENCHMARK(bm_fault_injection_bernoulli)->Arg(256);

void bm_mask_build(benchmark::State& state) {
    const array_config cfg = sized_array(256);
    random_fault_config fc;
    fc.fault_rate = 0.1;
    const fault_grid faults = generate_random_faults(cfg, fc, 7);
    const std::size_t fan = static_cast<std::size_t>(state.range(0));
    const gemm_mapping mapping(cfg, fan, fan);
    for (auto _ : state) {
        benchmark::DoNotOptimize(build_weight_mask(mapping, faults));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(fan * fan));
}
BENCHMARK(bm_mask_build)->Arg(64)->Arg(512);

void bm_systolic_gemm(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const array_config cfg = sized_array(64);
    random_fault_config fc;
    fc.fault_rate = 0.1;
    const systolic_array array(cfg, generate_random_faults(cfg, fc, 9));
    rng gen(5);
    tensor x({16, n});
    tensor w({n, n});
    uniform_init(x, -1.0f, 1.0f, gen);
    uniform_init(w, -1.0f, 1.0f, gen);
    const gemm_mapping mapping(cfg, n, n);
    for (auto _ : state) {
        benchmark::DoNotOptimize(array.run_gemm(x, w, mapping, 1.0f));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 16 *
                            static_cast<std::int64_t>(n * n));
}
BENCHMARK(bm_systolic_gemm)->Arg(64)->Arg(128);

void bm_perf_model(benchmark::State& state) {
    const array_config cfg = sized_array(256);
    random_fault_config fc;
    fc.fault_rate = 0.1;
    const fault_grid faults = generate_random_faults(cfg, fc, 11);
    const gemm_mapping mapping(cfg, 1024, 512);
    for (auto _ : state) {
        benchmark::DoNotOptimize(estimate_gemm_perf(cfg, mapping, 64, &faults));
    }
}
BENCHMARK(bm_perf_model);

void bm_fam_assignment(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const array_config cfg = sized_array(n);
    random_fault_config fc;
    fc.fault_rate = 0.1;
    const fault_grid faults = generate_random_faults(cfg, fc, 13);
    rng gen(3);
    sequential model;
    model.emplace<linear>(n, n, gen);
    const mapped_layer layer = collect_mapped_layers(model)[0];
    for (auto _ : state) {
        benchmark::DoNotOptimize(fam_column_permutation(layer, cfg, faults));
    }
}
BENCHMARK(bm_fam_assignment)->Arg(32)->Arg(128);

void bm_effective_rate(benchmark::State& state) {
    const array_config cfg = sized_array(256);
    random_fault_config fc;
    fc.fault_rate = 0.1;
    const fault_grid faults = generate_random_faults(cfg, fc, 17);
    rng gen(4);
    sequential model;
    model.emplace<linear>(32, 64, gen);
    model.emplace<relu_layer>();
    model.emplace<linear>(64, 10, gen);
    for (auto _ : state) {
        benchmark::DoNotOptimize(effective_fault_rate(
            model, cfg, faults, effective_rate_kind::weight_weighted));
    }
}
BENCHMARK(bm_effective_rate);

}  // namespace
}  // namespace reduce

BENCHMARK_MAIN();
