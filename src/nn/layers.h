// Dense and shape/activation layers.
#pragma once

#include <cstdint>

#include "nn/module.h"
#include "util/rng.h"

namespace reduce {

/// Fully connected layer: y = x · Wᵀ + b with W stored as [out, in].
///
/// The [out, in] layout matches the weight-stationary systolic mapping used
/// by the accelerator model (column ↔ output neuron, row ↔ input), so fault
/// masks computed by the fault module index this matrix directly.
class linear : public module {
public:
    /// Initializes W with He-normal (ReLU default) and b with zeros.
    linear(std::size_t in_features, std::size_t out_features, rng& gen);

    tensor forward(const tensor& input) override;
    tensor backward(const tensor& grad_output) override;
    std::vector<parameter*> parameters() override;
    std::unique_ptr<module> clone() const override;
    std::string name() const override { return "linear"; }

    /// Scheduler entry: y = relu(x·Wᵀ + b) with bias and activation applied
    /// in the GEMM epilogue. Resizes `relu_keep` to N*out and records the
    /// backward keep-mask (!(z <= 0) per pre-activation). Caches the input
    /// like forward(), so the standard backward() applies once the caller
    /// has masked the upstream gradient with relu_keep_backward.
    tensor forward_fused_relu(const tensor& input, std::vector<std::uint8_t>& relu_keep);

    std::size_t in_features() const { return in_features_; }
    std::size_t out_features() const { return out_features_; }

    /// Weight parameter [out, in]; masks are attached here by FAP.
    parameter& weight() { return weight_; }
    parameter& bias() { return bias_; }

private:
    std::size_t in_features_;
    std::size_t out_features_;
    parameter weight_;
    parameter bias_;
    tensor cached_input_;
};

/// Elementwise ReLU.
class relu_layer : public module {
public:
    tensor forward(const tensor& input) override;
    tensor backward(const tensor& grad_output) override;
    std::unique_ptr<module> clone() const override;
    std::string name() const override { return "relu"; }

private:
    tensor cached_input_;
};

/// Flattens [N, ...] to [N, rest].
class flatten : public module {
public:
    tensor forward(const tensor& input) override;
    tensor backward(const tensor& grad_output) override;
    std::unique_ptr<module> clone() const override;
    std::string name() const override { return "flatten"; }

private:
    shape_t cached_shape_;
};

/// Inverted dropout: scales kept activations by 1/(1-p) at train time,
/// identity at eval time. Deterministic per-construction seed.
class dropout : public module {
public:
    /// p is the drop probability in [0, 1).
    dropout(double p, std::uint64_t seed);

    tensor forward(const tensor& input) override;
    tensor backward(const tensor& grad_output) override;
    std::unique_ptr<module> clone() const override;
    std::string name() const override { return "dropout"; }

    /// Restarts the layer's random stream from `seed`. Per-episode
    /// reseeding (reseed_stochastic_layers) is what makes retraining runs
    /// with dropout independent of worker history — and therefore of thread
    /// count — in the parallel fleet/sweep engines.
    void reseed(std::uint64_t seed) { gen_ = rng(seed); }

private:
    double p_;
    rng gen_;
    tensor kept_scale_;  ///< per-element multiplier used in the last forward
};

}  // namespace reduce
