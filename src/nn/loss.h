// Loss functions. Each returns the scalar loss and the gradient with
// respect to the logits, ready to feed into module::backward.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace reduce {

/// Loss value plus gradient w.r.t. the network output.
struct loss_result {
    double value = 0.0;
    tensor grad;
};

/// Softmax cross-entropy with integer class labels, averaged over the batch.
/// logits: [N, C]; labels: N entries in [0, C).
loss_result cross_entropy_loss(const tensor& logits, const std::vector<std::size_t>& labels);

/// Mean squared error against a target tensor of the same shape, averaged
/// over all elements.
loss_result mse_loss(const tensor& prediction, const tensor& target);

}  // namespace reduce
