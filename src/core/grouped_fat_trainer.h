// Batched multi-variant retraining — K chips' FAT episodes in lockstep.
//
// PR 4 batched the fleet's *evaluation* (multi_mask_eval); retraining stayed
// strictly serial per chip, which leaves the executor paying the per-layer
// fixed costs (conv lowering, scatter, allocation, fork/join) once per chip
// per step. grouped_chip_tuner batches the training loop itself: K
// fault-masked clones advance through the SAME shuffled batch sequence in
// lockstep on a variant-stacked batch, sharing one batch gather, one stacked
// walker pass per layer (per-variant A and B operands — after the first
// optimizer step every variant owns different weights), and one optimizer
// sweep over the K per-variant SGD states.
//
// Determinism contract: every chip_outcome, trajectory point, and captured
// snapshot is byte-identical to running chip_tuner::tune serially on the
// same chip — at every group size K and every --gemm-threads. The pieces:
//   * the loader is shared, so each variant sees the exact serial batch
//     sequence (and BN variants see the exact serial batch statistics —
//     blocks slice per variant through each clone's own layers);
//   * per-variant losses are computed on each block independently (CE
//     normalizes by its own block's N = the serial batch size);
//   * the walker's grouped GEMMs run the serial kernels per block
//     (never-split-K), and the optimizer sweep steps each variant's own
//     sgd — inside a parallel region its element loops gate off, so the
//     fan-out over variants never changes a bit;
//   * clones are reseeded per chip (mix_seed(chip.seed, layer)) and wrapped
//     in fault_state_guard, exactly like the serial tuner.
//
// Non-finite divergence is the one thing the grouped path will not follow
// bit-for-bit (the padding-row skips are only byte-identical for finite
// operands — see tensor/conv.h), so it FAILS LOUDLY instead of drifting:
// a non-finite per-variant loss or a non-finite mapped weight at any
// checkpoint throws grouped_nonfinite_error, the guards restore every
// clone, and the fleet executor re-runs the whole block serially (counted
// in fleet_run_stats::nonfinite_downgrades).
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/fat_trainer.h"
#include "core/fleet_executor.h"
#include "core/policy.h"
#include "fault/chip.h"
#include "nn/serialize.h"

namespace reduce {

/// Thrown when a grouped training episode meets non-finite state (a
/// diverging variant) that the grouped kernels cannot reproduce
/// bit-identically. The thrower's clones are already restored (guards);
/// callers fall back to the serial per-chip path.
class grouped_nonfinite_error : public std::runtime_error {
public:
    explicit grouped_nonfinite_error(const std::string& what)
        : std::runtime_error(what) {}
};

/// Lockstep retraining worker over groups of chips. Owns K lazily-grown
/// deep clones of the prototype (K = largest group tuned so far), so
/// concurrent tuners never share mutable state; the referenced
/// datasets/snapshot are read-only and shared.
class grouped_chip_tuner {
public:
    /// Clones lazily from `prototype`; all references must outlive the tuner.
    grouped_chip_tuner(const sequential& prototype, const model_snapshot& pretrained,
                       const dataset& train_data, const dataset& test_data,
                       const array_config& array, fat_config trainer_cfg);

    /// Like chip_tuner::set_capture_tuned: capture per-chip deployable
    /// snapshots (parameters + state buffers) during tune_group.
    void set_capture_tuned(bool capture) { capture_tuned_ = capture; }

    /// Tunes `chips` in lockstep. Every allocation must be IDENTICAL in
    /// epochs and train_to_target (REDUCE_CHECK — the executor only groups
    /// same-allocation runs; selection_failed may differ, it is only
    /// reported). `accuracy_before` injects precomputed post-FAP accuracies
    /// (one per chip, from the grouped evaluator); pass empty to evaluate
    /// the group's epoch-0 point here in one stacked pass.
    ///
    /// Returns one chip_outcome per chip, byte-identical to serial
    /// chip_tuner::tune. Throws grouped_nonfinite_error when a variant
    /// diverges (see header note); the clones are restored on every exit.
    std::vector<chip_outcome> tune_group(const std::vector<const chip*>& chips,
                                         const std::vector<const epoch_allocation*>& allocs,
                                         double constraint,
                                         const std::vector<double>& effective_rates,
                                         const std::vector<double>& accuracy_before);

    /// Moves chip g's captured snapshot out (requires set_capture_tuned).
    model_snapshot take_tuned(std::size_t g);

private:
    void ensure_clones(std::size_t k);
    /// Throws grouped_nonfinite_error when any of the first `k` clones holds
    /// a non-finite mapped weight (`where` labels the check site).
    void check_mapped_finite(std::size_t k, const char* where);

    const sequential& prototype_;
    const model_snapshot& pretrained_;
    const dataset& train_data_;
    const dataset& test_data_;
    array_config array_;
    fat_config trainer_cfg_;
    bool capture_tuned_ = false;
    std::vector<std::unique_ptr<sequential>> clones_;
    std::vector<model_snapshot> tuned_;
};

}  // namespace reduce
