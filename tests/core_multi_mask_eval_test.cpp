// Serial-vs-batched equivalence suite for the multi-mask evaluation engine:
// the grouped evaluator must reproduce the serial restore → attach-masks →
// evaluate path BIT FOR BIT at every group size — over MLP, conv (including
// the VGG structural-zero lowering path), and batch-norm/dropout models,
// through ragged groups, duplicated chips, and chips with empty masks. Also
// pins the stochastic-layer determinism fixes the engine depends on: the
// fault_state_guard's batch-norm statistic restore and per-episode dropout
// reseeding.
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <vector>

#include "core/fleet_executor.h"
#include "core/multi_mask_eval.h"
#include "core/workload.h"
#include "data/synthetic.h"
#include "fault/chip.h"
#include "fault/fam.h"
#include "fault/mask_builder.h"
#include "nn/norm.h"
#include "util/error.h"

namespace reduce {
namespace {

/// The serial path the engine replaces, verbatim: per chip, restore the
/// snapshot, attach this grid's masks, evaluate the full test set, and let
/// the guard tear the masked state down.
double serial_accuracy(sequential& model, const model_snapshot& pretrained,
                       const dataset& train_data, const dataset& test_data,
                       const array_config& array, const fat_config& cfg,
                       const fault_grid& grid) {
    restore_parameters(model.parameters(), pretrained);
    fault_state_guard guard(model, pretrained);
    attach_fault_masks(model, array, grid);
    fault_aware_trainer trainer(model, train_data, test_data, cfg);
    return trainer.evaluate();
}

/// A bundle the evaluator tests run against: model + data + faulty chips.
struct eval_case {
    std::unique_ptr<sequential> model;
    model_snapshot pretrained;
    dataset train_data;
    dataset test_data;
    array_config array;
    fat_config trainer_cfg;
    std::vector<chip> chips;
};

std::vector<chip> make_case_fleet(const array_config& array, std::size_t count,
                                  double rate_lo, double rate_hi, std::uint64_t seed) {
    fleet_config fc;
    fc.num_chips = count;
    fc.rate_lo = rate_lo;
    fc.rate_hi = rate_hi;
    fc.seed = seed;
    return make_fleet(array, fc);
}

eval_case make_mlp_case() {
    eval_case c;
    workload w = make_standard_workload(make_test_workload_config());
    c.model = std::move(w.model);
    c.pretrained = std::move(w.pretrained);
    c.train_data = std::move(w.train_data);
    c.test_data = std::move(w.test_data);
    c.array = w.array;
    c.trainer_cfg = w.trainer_cfg;
    c.chips = make_case_fleet(c.array, 7, 0.03, 0.3, 99);
    // An explicitly fault-free chip: its masks are all-ones ("empty mask"),
    // and the grouped path must still reproduce the serial numbers.
    chip clean{1000, 1, 0.0, fault_grid(c.array.rows, c.array.cols)};
    c.chips.push_back(std::move(clean));
    return c;
}

/// VGG11 on 8x8 inputs: the deep 1x1-spatial stages exercise the grouped
/// conv lowering's structurally-zero patch-row skip.
eval_case make_vgg_case() {
    eval_case c;
    synthetic_images_config data_cfg;
    data_cfg.shape = {3, 8, 8};
    data_cfg.num_classes = 4;
    data_cfg.samples_per_class = 30;
    const dataset full = make_synthetic_images(data_cfg);
    dataset_split split = split_dataset(full, 0.6, 5);
    c.train_data = std::move(split.train);
    c.test_data = std::move(split.test);
    vgg11_config model_cfg;
    model_cfg.input = data_cfg.shape;
    model_cfg.num_classes = data_cfg.num_classes;
    model_cfg.width_multiplier = 0.0625;
    rng gen(3);
    c.model = make_vgg11(model_cfg, gen);
    c.pretrained = snapshot_parameters(c.model->parameters());
    c.array.rows = 48;
    c.array.cols = 48;
    c.trainer_cfg.batch_size = 32;
    c.chips = make_case_fleet(c.array, 5, 0.05, 0.3, 17);
    return c;
}

/// MLP with batch-norm AND dropout, pretrained a little so the running
/// statistics are away from their init — the stochastic-model case.
eval_case make_stochastic_case() {
    eval_case c;
    gaussian_mixture_config data_cfg;
    data_cfg.num_classes = 4;
    data_cfg.dim = 16;
    data_cfg.samples_per_class = 100;
    data_cfg.seed = 31;
    const dataset full = make_gaussian_mixture(data_cfg);
    dataset_split split = split_dataset(full, 0.7, 2);
    c.train_data = std::move(split.train);
    c.test_data = std::move(split.test);
    rng gen(4);
    c.model = std::make_unique<sequential>();
    c.model->emplace<linear>(16, 32, gen);
    c.model->emplace<batch_norm1d>(32);
    c.model->emplace<relu_layer>();
    c.model->emplace<dropout>(0.2, gen.next_u64());
    c.model->emplace<linear>(32, 4, gen);
    c.array.rows = 32;
    c.array.cols = 32;
    c.trainer_cfg.batch_size = 32;
    fault_aware_trainer pretrainer(*c.model, c.train_data, c.test_data, c.trainer_cfg);
    (void)pretrainer.train(2.0);
    c.pretrained = snapshot_parameters(c.model->parameters());
    c.chips = make_case_fleet(c.array, 6, 0.05, 0.25, 7);
    return c;
}

void expect_group_matches_serial(eval_case& c, const std::vector<std::size_t>& pick) {
    multi_mask_evaluator evaluator(*c.model, c.pretrained, c.test_data, c.array,
                                   c.trainer_cfg);
    std::vector<const fault_grid*> grids;
    grids.reserve(pick.size());
    for (const std::size_t idx : pick) { grids.push_back(&c.chips[idx].faults); }
    const std::vector<double> grouped = evaluator.evaluate(grids);
    ASSERT_EQ(grouped.size(), pick.size());
    for (std::size_t i = 0; i < pick.size(); ++i) {
        const double serial =
            serial_accuracy(*c.model, c.pretrained, c.train_data, c.test_data, c.array,
                            c.trainer_cfg, c.chips[pick[i]].faults);
        // Bit-level equality is the contract, not a tolerance.
        EXPECT_EQ(serial, grouped[i]) << "variant " << i << " (chip " << pick[i]
                                      << ") of a K=" << pick.size() << " group";
    }
}

/// Group selections for the satellite's K grid {1, 2, 7, 32}: indices wrap
/// around the case's chip list, so K beyond the fleet size stacks
/// duplicated chips (which must still come back element-identical).
std::vector<std::size_t> pick_cyclic(const eval_case& c, std::size_t k) {
    std::vector<std::size_t> pick(k);
    for (std::size_t i = 0; i < k; ++i) { pick[i] = i % c.chips.size(); }
    return pick;
}

TEST(MultiMaskEvaluator, MlpGroupsMatchSerialAtEveryK) {
    eval_case c = make_mlp_case();
    for (const std::size_t k : {1u, 2u, 7u, 32u}) {
        expect_group_matches_serial(c, pick_cyclic(c, k));
    }
}

TEST(MultiMaskEvaluator, EmptyMaskChipMatchesSerialInsideAGroup) {
    eval_case c = make_mlp_case();
    // The clean chip is last; group it with faulty ones.
    expect_group_matches_serial(c, {c.chips.size() - 1, 0, 1, c.chips.size() - 1});
}

TEST(MultiMaskEvaluator, VggConvGroupsMatchSerialAtEveryK) {
    eval_case c = make_vgg_case();
    for (const std::size_t k : {1u, 2u, 5u, 7u}) {
        expect_group_matches_serial(c, pick_cyclic(c, k));
    }
}

TEST(MultiMaskEvaluator, StochasticModelGroupsMatchSerial) {
    eval_case c = make_stochastic_case();
    for (const std::size_t k : {1u, 2u, 6u}) {
        expect_group_matches_serial(c, pick_cyclic(c, k));
    }
}

TEST(MultiMaskEvaluator, NestedSequentialModelsMatchSerial) {
    // Mapped layers inside nested containers walk with the same cursor the
    // serial attach path uses (collect_mapped_layers recursion), so any
    // nesting that trains serially also groups.
    eval_case c;
    gaussian_mixture_config data_cfg;
    data_cfg.num_classes = 4;
    data_cfg.dim = 16;
    data_cfg.samples_per_class = 60;
    data_cfg.seed = 51;
    const dataset full = make_gaussian_mixture(data_cfg);
    dataset_split split = split_dataset(full, 0.7, 3);
    c.train_data = std::move(split.train);
    c.test_data = std::move(split.test);
    rng gen(6);
    c.model = std::make_unique<sequential>();
    c.model->emplace<linear>(16, 32, gen);
    c.model->emplace<relu_layer>();
    auto block = std::make_unique<sequential>();
    block->emplace<linear>(32, 32, gen);
    block->emplace<relu_layer>();
    c.model->add(std::move(block));
    c.model->emplace<linear>(32, 4, gen);
    c.pretrained = snapshot_parameters(c.model->parameters());
    c.array.rows = 32;
    c.array.cols = 32;
    c.trainer_cfg.batch_size = 32;
    c.chips = make_case_fleet(c.array, 4, 0.05, 0.25, 13);
    for (const std::size_t k : {1u, 3u, 4u}) {
        expect_group_matches_serial(c, pick_cyclic(c, k));
    }
}

/// The serial FAM path: restore, attach this grid's masks under the chip's
/// column permutations, evaluate.
double serial_fam_accuracy(eval_case& c, const fault_grid& grid,
                           const std::vector<std::vector<std::size_t>>& perms) {
    restore_parameters(c.model->parameters(), c.pretrained);
    fault_state_guard guard(*c.model, c.pretrained);
    attach_fault_masks_permuted(*c.model, c.array, grid, perms);
    fault_aware_trainer trainer(*c.model, c.train_data, c.test_data, c.trainer_cfg);
    return trainer.evaluate();
}

void expect_fam_group_matches_serial(eval_case& c, const std::vector<std::size_t>& pick) {
    // Saliency-driven permutations come from the PRETRAINED weights, exactly
    // as the FAM baseline computes them before masking.
    restore_parameters(c.model->parameters(), c.pretrained);
    std::vector<std::vector<std::vector<std::size_t>>> perms;
    for (const std::size_t idx : pick) {
        perms.push_back(fam_permutations(*c.model, c.array, c.chips[idx].faults));
    }
    multi_mask_evaluator evaluator(*c.model, c.pretrained, c.test_data, c.array,
                                   c.trainer_cfg);
    std::vector<const fault_grid*> grids;
    std::vector<const std::vector<std::vector<std::size_t>>*> perm_ptrs;
    for (std::size_t i = 0; i < pick.size(); ++i) {
        grids.push_back(&c.chips[pick[i]].faults);
        // Mix identity variants (nullptr) among permuted ones — the engine
        // must route each variant through ITS mapping.
        perm_ptrs.push_back(i % 3 == 2 ? nullptr : &perms[i]);
    }
    const std::vector<double> grouped = evaluator.evaluate(grids, perm_ptrs);
    ASSERT_EQ(grouped.size(), pick.size());
    for (std::size_t i = 0; i < pick.size(); ++i) {
        const double serial =
            perm_ptrs[i] == nullptr
                ? serial_accuracy(*c.model, c.pretrained, c.train_data, c.test_data,
                                  c.array, c.trainer_cfg, c.chips[pick[i]].faults)
                : serial_fam_accuracy(c, c.chips[pick[i]].faults, perms[i]);
        EXPECT_EQ(serial, grouped[i]) << "FAM variant " << i << " (chip " << pick[i]
                                      << ") of a K=" << pick.size() << " group";
    }
}

TEST(MultiMaskEvaluator, FamPermutedMlpGroupsMatchSerial) {
    eval_case c = make_mlp_case();
    for (const std::size_t k : {1u, 4u, 8u}) {
        expect_fam_group_matches_serial(c, pick_cyclic(c, k));
    }
}

TEST(MultiMaskEvaluator, FamPermutedVggGroupsMatchSerial) {
    eval_case c = make_vgg_case();
    expect_fam_group_matches_serial(c, pick_cyclic(c, 5));
}

TEST(MultiMaskEvaluator, MidTrajectoryMaskedWeightsMatchSerialSubstitution) {
    // evaluate_masked's contract: stacked evaluation of caller-supplied
    // masked weights equals the serial path that substitutes the SAME
    // weights into a pretrained-restored clone. The weights here come from
    // real partial retraining episodes, so they are genuine mid-trajectory
    // checkpoints (value ⊙ mask after 0.25 epochs of masked SGD).
    eval_case c = make_mlp_case();
    const std::vector<std::size_t> pick = pick_cyclic(c, 4);
    const std::size_t layer_count = collect_mapped_layers(*c.model).size();
    std::vector<std::vector<tensor>> masked(layer_count);
    for (std::vector<tensor>& variants : masked) { variants.resize(pick.size()); }
    for (std::size_t g = 0; g < pick.size(); ++g) {
        restore_parameters(c.model->parameters(), c.pretrained);
        fault_state_guard guard(*c.model, c.pretrained);
        attach_fault_masks(*c.model, c.array, c.chips[pick[g]].faults);
        fault_aware_trainer trainer(*c.model, c.train_data, c.test_data, c.trainer_cfg);
        (void)trainer.train(0.25);
        const std::vector<mapped_layer> mapped = collect_mapped_layers(*c.model);
        for (std::size_t l = 0; l < mapped.size(); ++l) {
            masked[l][g] = mapped[l].weight->value;
        }
    }
    std::vector<double> serial(pick.size());
    for (std::size_t g = 0; g < pick.size(); ++g) {
        restore_parameters(c.model->parameters(), c.pretrained);
        fault_state_guard guard(*c.model, c.pretrained);
        const std::vector<mapped_layer> mapped = collect_mapped_layers(*c.model);
        for (std::size_t l = 0; l < mapped.size(); ++l) {
            mapped[l].weight->value = masked[l][g];
        }
        fault_aware_trainer trainer(*c.model, c.train_data, c.test_data, c.trainer_cfg);
        serial[g] = trainer.evaluate();
    }
    multi_mask_evaluator evaluator(*c.model, c.pretrained, c.test_data, c.array,
                                   c.trainer_cfg);
    const std::vector<double> grouped = evaluator.evaluate_masked(masked, pick.size());
    ASSERT_EQ(grouped.size(), pick.size());
    for (std::size_t g = 0; g < pick.size(); ++g) {
        EXPECT_EQ(serial[g], grouped[g]) << "checkpoint variant " << g;
    }
}

TEST(MultiMaskEvaluator, EvaluateMaskedRejectsUnsupportedInputsLoudly) {
    // Unsupported grouped combinations throw (satellite: never silently
    // wrong): stateful models, layer-count mismatches, non-finite weights.
    eval_case stochastic = make_stochastic_case();
    multi_mask_evaluator bn_eval(*stochastic.model, stochastic.pretrained,
                                 stochastic.test_data, stochastic.array,
                                 stochastic.trainer_cfg);
    const std::vector<mapped_layer> bn_mapped = collect_mapped_layers(*stochastic.model);
    std::vector<std::vector<tensor>> bn_masked(bn_mapped.size());
    for (std::size_t l = 0; l < bn_mapped.size(); ++l) {
        bn_masked[l].push_back(bn_mapped[l].weight->value);
    }
    EXPECT_THROW((void)bn_eval.evaluate_masked(bn_masked, 1), error);

    eval_case c = make_mlp_case();
    multi_mask_evaluator evaluator(*c.model, c.pretrained, c.test_data, c.array,
                                   c.trainer_cfg);
    EXPECT_THROW((void)evaluator.evaluate_masked({}, 0), error);
    EXPECT_THROW((void)evaluator.evaluate_masked({}, 1), error);
    const std::vector<mapped_layer> mapped = collect_mapped_layers(*c.model);
    std::vector<std::vector<tensor>> masked(mapped.size());
    for (std::size_t l = 0; l < mapped.size(); ++l) {
        masked[l].push_back(mapped[l].weight->value);
    }
    masked[0][0].raw()[0] = std::numeric_limits<float>::infinity();
    EXPECT_THROW((void)evaluator.evaluate_masked(masked, 1), error);
}

TEST(MultiMaskEvaluator, RejectsBadInputs) {
    eval_case c = make_mlp_case();
    multi_mask_evaluator evaluator(*c.model, c.pretrained, c.test_data, c.array,
                                   c.trainer_cfg);
    EXPECT_THROW((void)evaluator.evaluate({}), error);
    EXPECT_THROW((void)evaluator.evaluate({nullptr}), error);
    const fault_grid wrong_geometry(c.array.rows + 1, c.array.cols);
    EXPECT_THROW((void)evaluator.evaluate({&wrong_geometry}), error);
}

// ---- executor-level equivalence: grouped accuracy_before inside tune() ----

void expect_identical_outcomes(const policy_outcome& a, const policy_outcome& b,
                               const char* label) {
    ASSERT_EQ(a.chips.size(), b.chips.size()) << label;
    for (std::size_t i = 0; i < a.chips.size(); ++i) {
        const chip_outcome& x = a.chips[i];
        const chip_outcome& y = b.chips[i];
        EXPECT_EQ(x.chip_id, y.chip_id) << label << " chip " << i;
        EXPECT_EQ(x.accuracy_before, y.accuracy_before) << label << " chip " << i;
        EXPECT_EQ(x.final_accuracy, y.final_accuracy) << label << " chip " << i;
        EXPECT_EQ(x.epochs_run, y.epochs_run) << label << " chip " << i;
        EXPECT_EQ(x.masked_weight_fraction, y.masked_weight_fraction)
            << label << " chip " << i;
        EXPECT_EQ(x.meets_constraint, y.meets_constraint) << label << " chip " << i;
    }
}

TEST(MultiMaskEvaluator, FleetOutcomesAreEvalBatchAndThreadIndependent) {
    eval_case c = make_mlp_case();  // 8 chips → ragged final group at K=3
    const fixed_policy policy(0.2, 0.8);
    const auto run = [&](std::size_t threads, std::size_t eval_batch) {
        fleet_executor executor(
            *c.model, c.pretrained, c.train_data, c.test_data, c.array, c.trainer_cfg,
            fleet_executor_config{.threads = threads, .eval_batch_chips = eval_batch});
        return executor.run(policy, c.chips);
    };
    const policy_outcome serial = run(1, 1);
    for (const std::size_t threads : {1u, 2u, 8u}) {
        for (const std::size_t eval_batch : {3u, 4u, 32u}) {
            expect_identical_outcomes(serial, run(threads, eval_batch), "fleet");
        }
    }
}

TEST(MultiMaskEvaluator, StochasticFleetOutcomesAreEvalBatchAndThreadIndependent) {
    // The historical determinism gap (ROADMAP item 3): dropout streams and
    // batch-norm statistics used to depend on worker history, so any
    // thread-count change reshuffled outcomes. With per-chip reseeding and
    // the guard's buffer restore, the whole matrix must agree bitwise.
    eval_case c = make_stochastic_case();
    const fixed_policy policy(0.4, 0.7);
    const auto run = [&](std::size_t threads, std::size_t eval_batch) {
        fleet_executor executor(
            *c.model, c.pretrained, c.train_data, c.test_data, c.array, c.trainer_cfg,
            fleet_executor_config{.threads = threads, .eval_batch_chips = eval_batch});
        return executor.run(policy, c.chips);
    };
    const policy_outcome serial = run(1, 1);
    for (const std::size_t threads : {2u, 8u}) {
        for (const std::size_t eval_batch : {1u, 2u}) {
            expect_identical_outcomes(serial, run(threads, eval_batch), "stochastic fleet");
        }
    }
}

// ---- the determinism fixes the engine's guarantees stand on ----------------

TEST(FaultStateGuard, RestoresBatchNormRunningStatistics) {
    eval_case c = make_stochastic_case();
    const std::vector<tensor*> buffers = c.model->state_buffers();
    ASSERT_FALSE(buffers.empty());
    const std::vector<tensor> before = [&] {
        std::vector<tensor> copy;
        for (const tensor* t : buffers) { copy.push_back(*t); }
        return copy;
    }();
    {
        fault_state_guard guard(*c.model, c.pretrained);
        attach_fault_masks(*c.model, c.array, c.chips[0].faults);
        fault_aware_trainer trainer(*c.model, c.train_data, c.test_data, c.trainer_cfg);
        (void)trainer.train(0.5);
        // Training moved the running statistics.
        bool moved = false;
        for (std::size_t i = 0; i < buffers.size(); ++i) {
            if (!(*buffers[i] == before[i])) { moved = true; }
        }
        EXPECT_TRUE(moved);
    }
    for (std::size_t i = 0; i < buffers.size(); ++i) {
        EXPECT_TRUE(*buffers[i] == before[i]) << "buffer " << i << " not restored";
    }
}

TEST(ChipTuner, StochasticTuneIsIndependentOfWorkerHistory) {
    // Chip B's outcome must not depend on whether the tuner ran chip A
    // first — the property the parallel executor's thread-count guarantee
    // reduces to.
    eval_case c = make_stochastic_case();
    epoch_allocation alloc;
    alloc.epochs = 0.5;
    chip_tuner fresh(*c.model, c.pretrained, c.train_data, c.test_data, c.array,
                     c.trainer_cfg);
    const chip_outcome direct = fresh.tune(c.chips[1], alloc, 0.7, 0.1);

    chip_tuner warmed(*c.model, c.pretrained, c.train_data, c.test_data, c.array,
                      c.trainer_cfg);
    (void)warmed.tune(c.chips[0], alloc, 0.7, 0.1);
    const chip_outcome after_history = warmed.tune(c.chips[1], alloc, 0.7, 0.1);

    EXPECT_EQ(direct.accuracy_before, after_history.accuracy_before);
    EXPECT_EQ(direct.final_accuracy, after_history.final_accuracy);
    EXPECT_EQ(direct.epochs_run, after_history.epochs_run);
}

TEST(ReseedStochasticLayers, ReseedsEveryDropoutLayer) {
    rng gen(9);
    auto model = make_mlp({8, 16, 16, 4}, gen, 0.3);  // two dropout layers
    EXPECT_EQ(reseed_stochastic_layers(*model, 123), 2u);
    auto plain = make_mlp({8, 16, 4}, gen);
    EXPECT_EQ(reseed_stochastic_layers(*plain, 123), 0u);
}

}  // namespace
}  // namespace reduce
