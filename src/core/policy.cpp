#include "core/policy.h"

#include <sstream>

#include "util/error.h"

namespace reduce {

std::vector<epoch_allocation> retraining_policy::plan(
    const std::vector<chip_view>& fleet) const {
    std::vector<epoch_allocation> allocations;
    allocations.reserve(fleet.size());
    for (const chip_view& view : fleet) { allocations.push_back(allocate(view)); }
    return allocations;
}

reduce_policy::reduce_policy(const resilience_table& table, selector_config cfg,
                             std::string name)
    : table_(table), selector_(table, cfg), name_(std::move(name)) {}

epoch_allocation reduce_policy::allocate(const chip_view& view) const {
    const selection sel = selector_.select_for_rate(view.effective_fault_rate);
    epoch_allocation alloc;
    // Unreachable target → fall back to the full budget (conservative).
    alloc.epochs = sel.epochs.value_or(table_.max_epochs());
    alloc.selection_failed = !sel.epochs.has_value();
    return alloc;
}

fixed_policy::fixed_policy(double epochs, double target, std::string name)
    : epochs_(epochs), target_(target), name_(std::move(name)) {
    REDUCE_CHECK(epochs_ >= 0.0, "fixed policy epochs must be non-negative, got " << epochs_);
    REDUCE_CHECK(target_ >= 0.0 && target_ <= 1.0,
                 "accuracy constraint must be a fraction in [0, 1], got " << target_);
}

epoch_allocation fixed_policy::allocate(const chip_view&) const {
    epoch_allocation alloc;
    alloc.epochs = epochs_;
    return alloc;
}

oracle_policy::oracle_policy(const resilience_table& table, double target,
                             std::string name)
    : table_(table), target_(target), name_(std::move(name)) {
    REDUCE_CHECK(target_ >= 0.0 && target_ <= 1.0,
                 "accuracy constraint must be a fraction in [0, 1], got " << target_);
}

epoch_allocation oracle_policy::allocate(const chip_view&) const {
    epoch_allocation alloc;
    alloc.epochs = table_.max_epochs();
    alloc.train_to_target = true;
    return alloc;
}

binned_policy::binned_policy(const resilience_table& table, selector_config cfg,
                             std::size_t num_bins, std::string name)
    : inner_(table, cfg, std::move(name)), num_bins_(num_bins) {
    REDUCE_CHECK(num_bins_ >= 1, "binned policy needs at least one bin");
}

epoch_allocation binned_policy::allocate(const chip_view& view) const {
    return inner_.allocate(view);
}

std::vector<epoch_allocation> binned_policy::plan(
    const std::vector<chip_view>& fleet) const {
    std::vector<epoch_allocation> allocations = inner_.plan(fleet);
    std::vector<double> amounts;
    amounts.reserve(allocations.size());
    for (const epoch_allocation& a : allocations) { amounts.push_back(a.epochs); }
    const binning_result bins = bin_retraining_amounts(amounts, num_bins_);
    for (const epoch_bin& bin : bins.bins) {
        for (const std::size_t member : bin.members) {
            allocations[member].epochs = bin.epochs;
        }
    }
    return allocations;
}

void policy_registry::add(std::string name, std::string description, factory make) {
    REDUCE_CHECK(!name.empty(), "policy name must be non-empty");
    REDUCE_CHECK(make != nullptr, "policy factory must be callable");
    entries_[std::move(name)] = entry{std::move(description), std::move(make)};
}

bool policy_registry::contains(const std::string& name) const {
    return entries_.count(name) > 0;
}

std::unique_ptr<retraining_policy> policy_registry::make(const std::string& name,
                                                         const policy_context& ctx) const {
    const auto it = entries_.find(name);
    if (it == entries_.end()) {
        std::ostringstream oss;
        oss << "unknown retraining policy '" << name << "'; registered policies:";
        for (const auto& [known, _] : entries_) { oss << ' ' << known; }
        throw invalid_argument_error(oss.str());
    }
    std::unique_ptr<retraining_policy> policy = it->second.make(ctx);
    REDUCE_CHECK(policy != nullptr, "factory for policy '" << name << "' returned null");
    return policy;
}

std::vector<std::string> policy_registry::names() const {
    std::vector<std::string> all;
    all.reserve(entries_.size());
    for (const auto& [name, _] : entries_) { all.push_back(name); }
    return all;  // std::map iteration is already sorted
}

const std::string& policy_registry::describe(const std::string& name) const {
    const auto it = entries_.find(name);
    REDUCE_CHECK(it != entries_.end(), "unknown retraining policy '" << name << "'");
    return it->second.description;
}

namespace {

const resilience_table& require_table(const policy_context& ctx, const char* policy) {
    REDUCE_CHECK(ctx.table != nullptr,
                 "policy '" << policy << "' needs a resilience table in the context");
    return *ctx.table;
}

policy_registry make_builtin_registry() {
    policy_registry registry;
    registry.add("reduce", "per-chip amount from the resilience table (paper Step 2, max statistic)",
                 [](const policy_context& ctx) -> std::unique_ptr<retraining_policy> {
                     return std::make_unique<reduce_policy>(require_table(ctx, "reduce"),
                                                            ctx.selector);
                 });
    registry.add("reduce-mean", "reduce with the mean statistic (under-trains; Fig. 3b)",
                 [](const policy_context& ctx) -> std::unique_ptr<retraining_policy> {
                     selector_config cfg = ctx.selector;
                     cfg.stat = statistic::mean;
                     return std::make_unique<reduce_policy>(
                         require_table(ctx, "reduce-mean"), cfg, "reduce-mean");
                 });
    registry.add("fixed", "one pre-specified amount for every chip (VTS'18 baseline)",
                 [](const policy_context& ctx) -> std::unique_ptr<retraining_policy> {
                     return std::make_unique<fixed_policy>(ctx.fixed_epochs,
                                                           ctx.selector.accuracy_target);
                 });
    registry.add("oracle", "retrain-until-target upper bound (idealized early stopping)",
                 [](const policy_context& ctx) -> std::unique_ptr<retraining_policy> {
                     return std::make_unique<oracle_policy>(require_table(ctx, "oracle"),
                                                            ctx.selector.accuracy_target);
                 });
    registry.add("binned", "reduce amounts collapsed into k production job classes",
                 [](const policy_context& ctx) -> std::unique_ptr<retraining_policy> {
                     return std::make_unique<binned_policy>(require_table(ctx, "binned"),
                                                            ctx.selector, ctx.num_bins);
                 });
    return registry;
}

}  // namespace

policy_registry& policy_registry::global() {
    static policy_registry registry = make_builtin_registry();
    return registry;
}

}  // namespace reduce
