// Dense row-major float tensor.
//
// The numeric foundation for the NN substrate: contiguous float32 storage
// with shape metadata. Deliberately minimal — no views, no broadcasting
// machinery — because every consumer in this project operates on contiguous
// batches and explicit loops keep the single-core hot paths transparent to
// the optimizer.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace reduce {

/// Shape of a tensor: extent per dimension, outermost first.
using shape_t = std::vector<std::size_t>;

/// Renders a shape as "[2, 3, 4]" for error messages.
std::string shape_to_string(const shape_t& shape);

/// Number of elements implied by a shape (1 for rank-0).
std::size_t shape_numel(const shape_t& shape);

/// Dense row-major float tensor with value semantics.
///
/// Copying copies the buffer; moves are O(1). All indexing is bounds-checked
/// in debug-style accessors (`at`) and unchecked in the flat `data()` span
/// used by hot loops.
class tensor {
public:
    /// Empty rank-1 tensor of size 0.
    tensor() = default;

    /// Zero-initialized tensor of the given shape.
    explicit tensor(shape_t shape);

    /// Tensor of the given shape filled with `value`.
    tensor(shape_t shape, float value);

    /// Tensor of the given shape initialized from `values`
    /// (size must equal the shape's element count).
    tensor(shape_t shape, std::vector<float> values);

    /// Convenience: rank-1 tensor from an initializer list.
    static tensor from_values(std::initializer_list<float> values);

    /// Convenience: rank-2 tensor from nested initializer lists
    /// (all rows must have equal length).
    static tensor from_rows(std::initializer_list<std::initializer_list<float>> rows);

    /// Shape accessors.
    const shape_t& shape() const { return shape_; }
    std::size_t dim() const { return shape_.size(); }
    std::size_t extent(std::size_t axis) const;
    std::size_t numel() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    /// Flat storage access (row-major).
    std::span<float> data() { return std::span<float>(data_); }
    std::span<const float> data() const { return std::span<const float>(data_); }
    float* raw() { return data_.data(); }
    const float* raw() const { return data_.data(); }

    /// Flat element access without bounds checks (hot paths).
    float& operator[](std::size_t i) { return data_[i]; }
    float operator[](std::size_t i) const { return data_[i]; }

    /// Bounds-checked multi-dimensional access; throws shape_error on
    /// rank/range violations.
    float& at(std::span<const std::size_t> indices);
    float at(std::span<const std::size_t> indices) const;

    /// Rank-2 convenience accessors; throw shape_error unless dim() == 2.
    float& at2(std::size_t row, std::size_t col);
    float at2(std::size_t row, std::size_t col) const;

    /// Rank-4 convenience accessors (N, C, H, W); throw unless dim() == 4.
    float& at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w);
    float at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const;

    /// Sets every element to `value`.
    void fill(float value);

    /// Sets every element to zero.
    void zero() { fill(0.0f); }

    /// Returns a copy with a new shape; element count must match.
    tensor reshaped(shape_t new_shape) const;

    /// Reinterprets the shape in place; element count must match.
    void reshape(shape_t new_shape);

    /// Adopts `new_shape`, reusing the existing buffer when the element
    /// count already matches (no reallocation) and reallocating otherwise.
    /// Contents are unspecified afterwards — this is the reuse primitive for
    /// per-step cache tensors (batch-norm x̂, layer scratch) whose shape is
    /// stable across training steps.
    void ensure_shape(const shape_t& new_shape);

    /// Elementwise equality (exact float comparison).
    bool operator==(const tensor& other) const;

    /// True when shapes are equal and elements differ by at most `tol`.
    bool allclose(const tensor& other, float tol = 1e-5f) const;

    /// Sum of all elements (double accumulator).
    double sum() const;

    /// Mean of all elements; throws on empty tensors.
    double mean() const;

    /// Index of the maximum element; throws on empty tensors.
    std::size_t argmax() const;

    /// Human-readable description "tensor[2, 3]" for diagnostics.
    std::string describe() const;

private:
    std::size_t flat_index(std::span<const std::size_t> indices) const;

    shape_t shape_{0};
    std::vector<float> data_;
};

}  // namespace reduce
