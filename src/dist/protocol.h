// Wire protocol of the distributed sweep/retraining service.
//
// The rendered protocol reference lives in docs/protocol.md — keep the
// two in sync when changing anything wire-visible (and bump
// protocol_version below).
//
// ## Transport
//
// Plain TCP, no external dependencies. Both ends exchange *frames*:
//
//   +----------------------+----------------------------------+
//   | length: u32, big-end | payload: `length` bytes of JSON  |
//   +----------------------+----------------------------------+
//
// The payload is one compact (single-line) JSON object with a mandatory
// string member "type". A frame with length 0 or length > max_frame_payload
// is a protocol violation; so is a payload that fails to parse or lacks the
// "type" member. Violations raise io_error — the coordinator answers them by
// closing the offending connection (and re-queueing its leases), never by
// crashing.
//
// Binary payloads (RDNN snapshot bytes) travel base64-encoded inside JSON
// strings, so the whole protocol stays printable and inspectable on the
// wire at the cost of 4/3 expansion — snapshots are the only bulk binary
// and they flow worker→coordinator once per chip.
//
// ## Message types and flow
//
//   worker → coordinator              coordinator → worker
//   --------------------              --------------------
//   hello {version, fingerprint,      welcome {version, job, heartbeat_ms,
//          name, resumed}                      lease_timeout_ms,
//                                              want_snapshots}
//                                     reject {reason}            (then close)
//   request_work {}                   work {lease, kind=sweep_cells,
//                                           cells:[indices...]}
//                                     work {lease, kind=fleet_chip, chip,
//                                           allocation, constraint,
//                                           effective_rate}
//   heartbeat {lease}                 (extends the lease deadline)
//   result {lease, kind, table|       shutdown {reason}          (job done)
//           outcome [, snapshot]}
//
// ## Version negotiation and admission
//
// The first frame on a connection must be `hello`. The coordinator rejects
// (with a `reject` frame, then a close) when:
//   * hello.version != protocol_version — both ends must run the same
//     protocol revision; there is no cross-version compatibility mode, and
//     the version constant is bumped on any wire-visible change;
//   * hello.fingerprint != the coordinator's job fingerprint — for sweep
//     jobs this is resilience_fingerprint(cfg), which transitively names the
//     workload (model, dataset, pretraining), the sweep grid, the fault
//     model, and the schema version. A worker built from a different config
//     would compute different (wrong, silently mergeable) numbers; the
//     handshake is what makes that impossible.
//
// After `welcome`, the worker pulls work with `request_work`. The
// coordinator answers immediately when units are pending; otherwise it
// parks the worker and *pushes* a `work` frame later (when a lease expires
// or is returned), or `shutdown` once the job completes.
//
// ## Leases, heartbeats, and fault handling
//
// Every `work` frame carries a fresh lease id. A lease is alive while its
// worker heartbeats (every heartbeat_ms); a lease silent for
// lease_timeout_ms — or whose connection drops — is revoked and its unit
// re-queued for another worker. Work units are idempotent by construction
// (per-cell / per-chip seeding), so a revoked unit re-executes
// byte-identically elsewhere; a straggler's late `result` for a unit that
// is not yet done is accepted (it is the same bytes), and for a unit
// already done it is dropped as a duplicate.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/fleet_executor.h"
#include "core/policy.h"
#include "fault/chip.h"
#include "util/json.h"

namespace reduce::dist {

/// Wire protocol revision. Bumped on ANY wire-visible change; both ends
/// must match exactly (checked in the hello/welcome handshake).
/// v2: hello gained the mandatory `resumed` flag (worker session-resume).
inline constexpr int protocol_version = 2;

/// Upper bound on a frame payload. Far above any real message (the largest
/// are RDNN2 snapshots of this repo's models, well under a hundred MB even
/// base64-expanded), low enough that a garbage length prefix is rejected
/// before driving an unchecked multi-gigabyte allocation.
inline constexpr std::uint32_t max_frame_payload = 256u << 20;

// --- Framing ---------------------------------------------------------------

/// Serializes a message into one wire frame: u32 big-endian payload length
/// followed by the compact JSON payload.
std::string encode_frame(const json_value& message);

/// Incremental frame decoder: feed() raw bytes as they arrive, next() pops
/// complete messages. Handles frames split across arbitrarily many reads
/// and multiple frames per read. Throws io_error on protocol violations
/// (zero/oversized length, unparseable payload) — the caller closes the
/// connection.
class frame_decoder {
public:
    /// Appends raw bytes from the socket.
    void feed(const char* data, std::size_t n);

    /// Pops the next complete message, or nullopt when more bytes are
    /// needed. Throws io_error on a malformed frame.
    std::optional<json_value> next();

    /// Bytes buffered but not yet consumed by next().
    std::size_t buffered() const { return buffer_.size(); }

private:
    std::string buffer_;
};

// --- base64 (for snapshot bytes inside JSON strings) ------------------------

/// Standard base64 with padding.
std::string base64_encode(const std::string& bytes);

/// Inverse of base64_encode; throws io_error on malformed input.
std::string base64_decode(const std::string& text);

// --- Sockets ----------------------------------------------------------------

/// Thin RAII wrapper over a connected TCP socket (POSIX). Move-only.
class tcp_socket {
public:
    tcp_socket() = default;
    explicit tcp_socket(int fd) : fd_(fd) {}
    tcp_socket(const tcp_socket&) = delete;
    tcp_socket& operator=(const tcp_socket&) = delete;
    tcp_socket(tcp_socket&& other) noexcept;
    tcp_socket& operator=(tcp_socket&& other) noexcept;
    ~tcp_socket() { close(); }

    /// Connects to host:port; throws io_error on failure.
    static tcp_socket connect_to(const std::string& host, int port);

    /// Switches the descriptor between blocking and non-blocking mode.
    void set_nonblocking(bool nonblocking);

    /// Blocking send of the whole buffer; throws io_error on failure.
    void send_all(const std::string& bytes);

    /// Non-blocking-friendly send: writes what the kernel accepts and
    /// returns the byte count (0 when the send buffer is full). Throws
    /// io_error on hard errors.
    std::size_t send_some(const char* data, std::size_t n);

    /// One receive. `closed` is set when the peer shut the connection;
    /// `would_block` when a non-blocking read found nothing.
    struct recv_result {
        std::size_t bytes = 0;
        bool closed = false;
        bool would_block = false;
    };
    recv_result recv_some(char* buf, std::size_t cap);

    void close();
    int fd() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

private:
    int fd_ = -1;
};

/// Listening TCP socket. Move-only. The descriptor is non-blocking so an
/// event loop can drain the accept queue without stalling.
class tcp_listener {
public:
    /// Binds address:port and listens; port 0 picks an ephemeral port
    /// (read it back via port()). Throws io_error on failure.
    tcp_listener(const std::string& address, int port);
    tcp_listener(const tcp_listener&) = delete;
    tcp_listener& operator=(const tcp_listener&) = delete;
    tcp_listener(tcp_listener&& other) noexcept;
    tcp_listener& operator=(tcp_listener&& other) noexcept;
    ~tcp_listener() { close(); }

    /// Accepts one pending connection (returned non-blocking), or nullopt
    /// when the queue is empty.
    std::optional<tcp_socket> accept_one();

    int port() const { return port_; }
    int fd() const { return fd_; }
    void close();

private:
    int fd_ = -1;
    int port_ = 0;
};

// --- Messages ---------------------------------------------------------------

/// The kind of job a coordinator serves (carried in `welcome` so a worker
/// knows which work kinds to expect).
enum class job_kind { sweep, fleet };

std::string job_kind_name(job_kind kind);
job_kind job_kind_from_name(const std::string& name);

/// Mandatory "type" member of a message; throws io_error when absent.
const std::string& message_type(const json_value& message);

/// `resumed` marks a re-handshake after a mid-job transport loss; the
/// coordinator counts it (workers_resumed) and expects stray results.
json_value make_hello(const std::string& fingerprint, const std::string& worker_name,
                      bool resumed = false);
json_value make_welcome(job_kind kind, int heartbeat_ms, int lease_timeout_ms,
                        bool want_snapshots);
json_value make_reject(const std::string& reason);
json_value make_request_work();
json_value make_sweep_work(std::uint64_t lease, const std::vector<std::size_t>& cells);
json_value make_chip_work(std::uint64_t lease, const chip& c, const epoch_allocation& alloc,
                          double constraint, double effective_rate);
json_value make_sweep_result(std::uint64_t lease, const json_value& shard_table);
json_value make_chip_result(std::uint64_t lease, const chip_outcome& outcome,
                            const std::string& snapshot_bytes);
json_value make_heartbeat(std::uint64_t lease);
json_value make_shutdown(const std::string& reason);

/// chip_outcome ⇄ JSON (every field round-trips exactly; doubles are
/// serialized at full precision by the json layer).
json_value chip_outcome_to_json(const chip_outcome& outcome);
chip_outcome chip_outcome_from_json(const json_value& value);

/// epoch_allocation ⇄ JSON.
json_value allocation_to_json(const epoch_allocation& alloc);
epoch_allocation allocation_from_json(const json_value& value);

}  // namespace reduce::dist
