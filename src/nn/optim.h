// Optimizers and learning-rate schedules.
//
// Optimizers are mask-aware: when a parameter carries a fault mask, the
// gradient is masked before the update and the value is re-masked after it,
// so weights mapped to bypassed PEs stay exactly zero throughout fault-aware
// retraining (the FAP+T invariant from Zhang et al., VTS'18).
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "nn/module.h"

namespace reduce {

/// Deep copy of an optimizer's internal state, for checkpoint/rollback in
/// event-driven training (fault timelines). `buffers` holds the optimizer's
/// per-parameter accumulators in a fixed implementation order (sgd:
/// velocity; adam: first moments then second moments); `step_count` carries
/// counters like adam's t. An optimizer without internal state round-trips
/// an empty snapshot.
struct optimizer_state {
    std::vector<tensor> buffers;
    std::uint64_t step_count = 0;
};

/// Base optimizer interface over a fixed parameter set.
class optimizer {
public:
    explicit optimizer(std::vector<parameter*> params);
    optimizer(const optimizer&) = delete;
    optimizer& operator=(const optimizer&) = delete;
    virtual ~optimizer() = default;

    /// Applies one update from the accumulated gradients.
    virtual void step() = 0;

    /// Zeroes all gradients.
    void zero_grad();

    /// Current learning rate.
    double learning_rate() const { return lr_; }

    /// Sets the learning rate (used by schedulers).
    void set_learning_rate(double lr);

    /// The parameters this optimizer updates.
    const std::vector<parameter*>& params() const { return params_; }

    /// Snapshot of the internal state (momentum/moment buffers, counters).
    virtual optimizer_state save_state() const { return {}; }

    /// Restores a snapshot taken from the SAME optimizer configuration
    /// (shape-checked); the inverse of save_state().
    virtual void restore_state(const optimizer_state& state);

    /// Zeroes internal state wherever the owning parameter's fault mask is
    /// zero. Called when a timeline event re-masks weights mid-run: a
    /// newly pruned weight must lose its momentum too, or the next step
    /// would push it off zero before apply_mask clamps it back — changing
    /// every unmasked weight through shared reductions downstream.
    virtual void mask_state() {}

protected:
    std::vector<parameter*> params_;
    double lr_ = 0.01;
};

/// SGD with optional momentum and decoupled weight decay.
class sgd : public optimizer {
public:
    struct config {
        double learning_rate = 0.01;
        double momentum = 0.0;       ///< 0 disables the velocity buffer
        double weight_decay = 0.0;   ///< L2 coefficient added to the gradient
        bool nesterov = false;
    };

    sgd(std::vector<parameter*> params, config cfg);

    void step() override;

    optimizer_state save_state() const override;
    void restore_state(const optimizer_state& state) override;
    void mask_state() override;

private:
    config cfg_;
    std::vector<tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class adam : public optimizer {
public:
    struct config {
        double learning_rate = 1e-3;
        double beta1 = 0.9;
        double beta2 = 0.999;
        double eps = 1e-8;
        double weight_decay = 0.0;
    };

    adam(std::vector<parameter*> params, config cfg);

    void step() override;

    optimizer_state save_state() const override;
    void restore_state(const optimizer_state& state) override;
    void mask_state() override;

private:
    config cfg_;
    std::vector<tensor> m_;
    std::vector<tensor> v_;
    std::size_t t_ = 0;
};

/// Learning-rate schedule interface: maps a completed-step counter to a rate.
class lr_schedule {
public:
    virtual ~lr_schedule() = default;

    /// Learning rate to use at the given zero-based step index.
    virtual double rate_at(std::size_t step) const = 0;
};

/// Constant rate.
class constant_lr : public lr_schedule {
public:
    explicit constant_lr(double rate);
    double rate_at(std::size_t step) const override;

private:
    double rate_;
};

/// Step decay: rate * gamma^(step / period).
class step_decay_lr : public lr_schedule {
public:
    step_decay_lr(double initial, double gamma, std::size_t period);
    double rate_at(std::size_t step) const override;

private:
    double initial_;
    double gamma_;
    std::size_t period_;
};

/// Cosine decay from `initial` to `floor` over `total_steps`.
class cosine_lr : public lr_schedule {
public:
    cosine_lr(double initial, double floor, std::size_t total_steps);
    double rate_at(std::size_t step) const override;

private:
    double initial_;
    double floor_;
    std::size_t total_steps_;
};

/// Global gradient-norm clipping; returns the pre-clip norm.
double clip_grad_norm(const std::vector<parameter*>& params, double max_norm);

}  // namespace reduce
