// Weight-to-PE mapping for the weight-stationary dataflow.
//
// A layer's GEMM weight matrix W[cols = fan-out][rows = fan-in] is tiled
// over the array: tile (ti, tj) covers input rows [ti*R, ti*R+R) and output
// columns [tj*C, tj*C+C). Inside a tile, weight (i, o) sits on PE
// (i mod R, o mod C). Consequence: a faulty PE (r, c) prunes EVERY weight
// whose (fan-in mod R, fan-out mod C) equals (r, c) — across all tiles — and
// the same fault map therefore touches every layer of the network, exactly
// the coupling the Reduce paper's resilience analysis captures.
//
// An optional column permutation supports Fault-Aware Mapping (SalvageDNN):
// logical output o executes on physical column perm[o mod C] instead of
// o mod C.
#pragma once

#include <cstddef>
#include <vector>

#include "accel/array_config.h"
#include "accel/fault_grid.h"

namespace reduce {

/// Position of one weight on the physical array.
struct pe_coordinate {
    std::size_t row = 0;
    std::size_t col = 0;

    bool operator==(const pe_coordinate&) const = default;
};

/// Mapping of a [fan_out x fan_in] GEMM onto a fixed array geometry.
class gemm_mapping {
public:
    /// Identity column mapping (no FAM permutation).
    gemm_mapping(const array_config& array, std::size_t fan_in, std::size_t fan_out);

    /// With an explicit physical-column permutation of size array.cols
    /// (perm[logical] = physical); must be a bijection.
    gemm_mapping(const array_config& array, std::size_t fan_in, std::size_t fan_out,
                 std::vector<std::size_t> column_permutation);

    std::size_t fan_in() const { return fan_in_; }
    std::size_t fan_out() const { return fan_out_; }
    std::size_t array_rows() const { return rows_; }
    std::size_t array_cols() const { return cols_; }

    /// Number of tiles along fan-in / fan-out.
    std::size_t row_tiles() const { return (fan_in_ + rows_ - 1) / rows_; }
    std::size_t col_tiles() const { return (fan_out_ + cols_ - 1) / cols_; }

    /// Physical PE hosting weight (input index i, output index o).
    pe_coordinate pe_for_weight(std::size_t input_index, std::size_t output_index) const;

    /// Rows/cols of the array actually used by this GEMM (min(fan, dim) for
    /// single-tile layers, the full extent once tiling wraps).
    std::size_t used_rows() const;
    std::size_t used_cols() const;

    /// Fraction of weights of this GEMM that land on faulty PEs.
    double masked_weight_fraction(const fault_grid& faults) const;

    /// The column permutation in effect (identity when not using FAM).
    const std::vector<std::size_t>& column_permutation() const { return perm_; }

private:
    void validate_permutation() const;

    std::size_t rows_;
    std::size_t cols_;
    std::size_t fan_in_;
    std::size_t fan_out_;
    std::vector<std::size_t> perm_;
};

}  // namespace reduce
