#include "nn/module.h"

#include "nn/schedule.h"
#include "tensor/ops.h"
#include "util/error.h"

namespace reduce {

void parameter::apply_mask() {
    if (!has_mask()) { return; }
    REDUCE_CHECK(mask.shape() == value.shape(),
                 "mask " << mask.describe() << " does not match parameter " << value.describe());
    mul_inplace(value, mask);
}

void parameter::mask_grad() {
    if (!has_mask()) { return; }
    REDUCE_CHECK(mask.shape() == grad.shape(),
                 "mask " << mask.describe() << " does not match gradient " << grad.describe());
    mul_inplace(grad, mask);
}

sequential::sequential() = default;
sequential::~sequential() = default;

module& sequential::add(std::unique_ptr<module> layer) {
    REDUCE_CHECK(layer != nullptr, "sequential::add requires a layer");
    layers_.push_back(std::move(layer));
    schedule_.reset();  // structural change: replan at the next forward
    return *layers_.back();
}

tensor sequential::forward(const tensor& input) {
    if (schedule_ == nullptr || !schedule_->valid_for(*this)) {
        if (schedule_ == nullptr) { schedule_ = std::make_unique<op_schedule>(); }
        schedule_->build(*this);
    }
    return schedule_->forward(*this, input);
}

tensor sequential::backward(const tensor& grad_output) {
    REDUCE_CHECK(schedule_ != nullptr && schedule_->valid_for(*this),
                 "sequential backward requires a forward under the same layer list and "
                 "fusion setting");
    return schedule_->backward(*this, grad_output);
}

std::vector<parameter*> sequential::parameters() {
    std::vector<parameter*> all;
    for (auto& layer : layers_) {
        for (parameter* p : layer->parameters()) { all.push_back(p); }
    }
    return all;
}

std::vector<tensor*> sequential::state_buffers() {
    std::vector<tensor*> all;
    for (auto& layer : layers_) {
        for (tensor* t : layer->state_buffers()) { all.push_back(t); }
    }
    return all;
}

void sequential::set_training(bool training) {
    module::set_training(training);
    for (auto& layer : layers_) { layer->set_training(training); }
}

std::unique_ptr<module> sequential::clone() const {
    auto copy = std::make_unique<sequential>();
    for (const auto& layer : layers_) { copy->add(layer->clone()); }
    copy->training_ = training_;
    return copy;
}

std::unique_ptr<sequential> clone_model(const sequential& model) {
    std::unique_ptr<module> copy = model.clone();
    auto* seq = dynamic_cast<sequential*>(copy.get());
    REDUCE_CHECK(seq != nullptr, "sequential::clone produced a non-sequential module");
    copy.release();
    return std::unique_ptr<sequential>(seq);
}

module& sequential::layer(std::size_t index) {
    REDUCE_CHECK(index < layers_.size(),
                 "layer index " << index << " out of range (size " << layers_.size() << ")");
    return *layers_[index];
}

std::size_t parameter_count(const std::vector<parameter*>& params) {
    std::size_t total = 0;
    for (const parameter* p : params) { total += p->value.numel(); }
    return total;
}

void apply_all_masks(const std::vector<parameter*>& params) {
    for (parameter* p : params) { p->apply_mask(); }
}

void zero_all_grads(const std::vector<parameter*>& params) {
    for (parameter* p : params) { p->zero_grad(); }
}

}  // namespace reduce
