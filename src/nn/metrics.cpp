#include "nn/metrics.h"

#include "tensor/ops.h"
#include "util/error.h"

namespace reduce {

std::size_t correct_count(const tensor& logits, const std::vector<std::size_t>& labels) {
    const std::vector<std::size_t> predictions = argmax_rows(logits);
    REDUCE_CHECK(predictions.size() == labels.size(),
                 "prediction count " << predictions.size() << " != label count "
                                     << labels.size());
    std::size_t correct = 0;
    for (std::size_t i = 0; i < labels.size(); ++i) {
        if (predictions[i] == labels[i]) { ++correct; }
    }
    return correct;
}

std::vector<std::size_t> correct_counts_grouped(const tensor& logits, std::size_t groups,
                                                const std::vector<std::size_t>& labels) {
    REDUCE_CHECK(groups > 0, "correct_counts_grouped needs at least one group");
    const std::vector<std::size_t> predictions = argmax_rows(logits);
    REDUCE_CHECK(predictions.size() == groups * labels.size(),
                 "stacked logits hold " << predictions.size() << " rows, expected " << groups
                                        << " x " << labels.size());
    std::vector<std::size_t> correct(groups, 0);
    for (std::size_t g = 0; g < groups; ++g) {
        const std::size_t base = g * labels.size();
        for (std::size_t i = 0; i < labels.size(); ++i) {
            if (predictions[base + i] == labels[i]) { ++correct[g]; }
        }
    }
    return correct;
}

double accuracy(const tensor& logits, const std::vector<std::size_t>& labels) {
    REDUCE_CHECK(!labels.empty(), "accuracy over empty batch");
    return static_cast<double>(correct_count(logits, labels)) /
           static_cast<double>(labels.size());
}

confusion_matrix::confusion_matrix(std::size_t num_classes)
    : num_classes_(num_classes), counts_(num_classes * num_classes, 0) {
    REDUCE_CHECK(num_classes > 0, "confusion matrix needs at least one class");
}

void confusion_matrix::add_batch(const tensor& logits, const std::vector<std::size_t>& labels) {
    const std::vector<std::size_t> predictions = argmax_rows(logits);
    REDUCE_CHECK(predictions.size() == labels.size(), "confusion matrix batch size mismatch");
    for (std::size_t i = 0; i < labels.size(); ++i) {
        REDUCE_CHECK(labels[i] < num_classes_ && predictions[i] < num_classes_,
                     "class index out of range in confusion matrix");
        ++counts_[labels[i] * num_classes_ + predictions[i]];
        ++total_;
        if (labels[i] == predictions[i]) { ++correct_; }
    }
}

std::size_t confusion_matrix::count(std::size_t truth, std::size_t predicted) const {
    REDUCE_CHECK(truth < num_classes_ && predicted < num_classes_,
                 "confusion matrix index out of range");
    return counts_[truth * num_classes_ + predicted];
}

double confusion_matrix::overall_accuracy() const {
    if (total_ == 0) { return 0.0; }
    return static_cast<double>(correct_) / static_cast<double>(total_);
}

std::vector<double> confusion_matrix::per_class_recall() const {
    std::vector<double> recall(num_classes_, 0.0);
    for (std::size_t t = 0; t < num_classes_; ++t) {
        std::size_t row_total = 0;
        for (std::size_t p = 0; p < num_classes_; ++p) { row_total += count(t, p); }
        if (row_total > 0) {
            recall[t] = static_cast<double>(count(t, t)) / static_cast<double>(row_total);
        }
    }
    return recall;
}

}  // namespace reduce
