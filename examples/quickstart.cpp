// Quickstart: the whole Reduce story on one chip.
//
//  1. Pre-train a DNN on the standard synthetic workload.
//  2. Fabricate a faulty chip (random permanent faults in the 256x256 PE
//     array) and apply FAP — accuracy drops.
//  3. Run Step 1 (resilience analysis) on a coarse grid.
//  4. Run Step 2 (select the retraining amount for this chip).
//  5. Run Step 3 (FAT for exactly that amount) — accuracy recovers to the
//     constraint without paying for full retraining.
//
// Usage: quickstart [--fault-rate 0.15] [--constraint 0.91] [--seed 7]

#include <iostream>

#include "core/resilience.h"
#include "core/selector.h"
#include "core/workload.h"
#include "fault/mask_builder.h"
#include "util/cli.h"
#include "util/log.h"
#include "util/stopwatch.h"

using namespace reduce;

int main(int argc, char** argv) {
    try {
        const cli_args args(argc, argv);
        const double fault_rate = args.get_double("fault-rate", 0.15);
        const double constraint = args.get_double("constraint", 0.91);
        const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
        set_log_level(log_level::warn);

        std::cout << "== Reduce quickstart ==\n";
        stopwatch timer;

        // 1. Pre-trained DNN + dataset (the framework's first two inputs).
        workload w = make_standard_workload();
        std::cout << "pre-trained model: " << w.clean_accuracy * 100.0
                  << "% clean test accuracy (" << timer.seconds() << " s)\n";

        // 2. One faulty chip, FAP applied.
        random_fault_config fault_cfg;
        fault_cfg.fault_rate = fault_rate;
        const fault_grid faults = generate_random_faults(w.array, fault_cfg, seed);
        restore_parameters(w.model->parameters(), w.pretrained);
        const mask_stats stats = attach_fault_masks(*w.model, w.array, faults);
        fault_aware_trainer trainer(*w.model, w.train_data, w.test_data, w.trainer_cfg);
        std::cout << "chip fault rate " << fault_rate << " -> " << stats.masked_fraction() * 100.0
                  << "% of weights pruned, accuracy " << trainer.evaluate() * 100.0 << "%\n";
        clear_fault_masks(*w.model);

        // 3. Step 1: resilience analysis (coarse grid for the demo).
        resilience_analyzer analyzer(*w.model, w.pretrained, w.train_data, w.test_data,
                                     w.array, w.trainer_cfg);
        resilience_config res_cfg;
        res_cfg.fault_rates = {0.0, 0.1, 0.2, 0.3};
        res_cfg.repeats = 3;
        res_cfg.max_epochs = 6.0;
        const resilience_table table = analyzer.analyze(res_cfg);
        std::cout << "resilience analysis done (" << timer.seconds() << " s total)\n";

        // 4. Step 2: amount selection for this chip.
        selector_config sel_cfg;
        sel_cfg.accuracy_target = constraint;
        sel_cfg.stat = statistic::max;
        retraining_selector selector(table, sel_cfg);
        const selection sel = selector.select(*w.model, w.array, faults);
        if (!sel.epochs.has_value()) {
            std::cout << "constraint " << constraint
                      << " is unreachable at this fault rate; increase the budget\n";
            return 0;
        }
        std::cout << "selected retraining amount: " << *sel.epochs << " epochs (effective rate "
                  << sel.effective_fault_rate << ")\n";

        // 5. Step 3: FAT for exactly the selected amount.
        restore_parameters(w.model->parameters(), w.pretrained);
        attach_fault_masks(*w.model, w.array, faults);
        const fat_result fat = trainer.train(*sel.epochs);
        std::cout << "after " << fat.epochs_run << " epochs of FAT: " << fat.final_accuracy * 100.0
                  << "% (constraint " << constraint * 100.0 << "%, "
                  << (fat.final_accuracy >= constraint ? "met" : "MISSED") << ")\n";
        std::cout << "total wall time: " << timer.seconds() << " s\n";
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
}
