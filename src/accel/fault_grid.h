// Per-PE fault state of a systolic array ("fault map" of one chip).
#pragma once

#include <cstddef>
#include <vector>

#include "accel/pe.h"

namespace reduce {

/// Dense grid of pe_fault states, one per PE.
///
/// This is the "fault map" the paper takes as per-chip input: which PEs of
/// the fabricated array are permanently faulty. The fault module layers
/// generation, serialization, and chip identity on top; the accel module
/// only needs the states themselves.
class fault_grid {
public:
    /// All-healthy grid of the given geometry.
    fault_grid(std::size_t rows, std::size_t cols);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t pe_count() const { return rows_ * cols_; }

    /// State of PE (row, col); bounds-checked.
    pe_fault at(std::size_t row, std::size_t col) const;

    /// Sets the state of PE (row, col); bounds-checked.
    void set(std::size_t row, std::size_t col, pe_fault fault);

    /// Number of non-healthy PEs.
    std::size_t faulty_count() const;

    /// Faulty fraction of the whole array, in [0, 1].
    double fault_rate() const;

    /// Number of non-healthy PEs inside the top-left sub-rectangle
    /// [0, sub_rows) x [0, sub_cols) — the region a small layer occupies.
    std::size_t faulty_count_in(std::size_t sub_rows, std::size_t sub_cols) const;

    /// Faulty fraction of that sub-rectangle.
    double fault_rate_in(std::size_t sub_rows, std::size_t sub_cols) const;

    /// Replaces every non-healthy state with `repair` (FAP turns stuck PEs
    /// into bypassed ones). Returns the number of PEs changed.
    std::size_t repair_all(pe_fault repair);

    /// Per-column count of faulty PEs (used by FAM column assignment).
    std::vector<std::size_t> faulty_per_column() const;

    /// Raw row-major state vector. Ref-qualified: calling on a temporary
    /// would dangle, so rvalues hand the vector out by value instead.
    const std::vector<pe_fault>& states() const& { return states_; }
    std::vector<pe_fault> states() && { return std::move(states_); }

    bool operator==(const fault_grid& other) const = default;

private:
    std::size_t index(std::size_t row, std::size_t col) const;

    std::size_t rows_;
    std::size_t cols_;
    std::vector<pe_fault> states_;
};

}  // namespace reduce
