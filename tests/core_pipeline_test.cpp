// Tests for the DEPRECATED reduce_pipeline shim (Steps 2+3 over a fleet)
// and the mitigation-comparison harness. The shim must keep the legacy
// contract — run_reduce/run_fixed semantics, model restored afterwards —
// while delegating to the policy/executor API underneath; equivalence with
// that API is asserted in core_fleet_executor_test.cpp.
#include <gtest/gtest.h>

#include "core/mitigation.h"
#include "core/pipeline.h"
#include "core/workload.h"
#include "util/error.h"

namespace reduce {
namespace {

class PipelineFixture : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        shared_ = new workload(make_standard_workload(make_test_workload_config()));
        fleet_config fc;
        fc.num_chips = 4;
        fc.rate_lo = 0.05;
        fc.rate_hi = 0.3;
        fc.seed = 91;
        fleet_ = new std::vector<chip>(make_fleet(shared_->array, fc));
        // A small but real resilience table shared by the policy tests.
        reduce_pipeline pipeline(*shared_->model, shared_->pretrained, shared_->train_data,
                                 shared_->test_data, shared_->array, shared_->trainer_cfg);
        resilience_config rc;
        rc.fault_rates = {0.0, 0.15, 0.3};
        rc.repeats = 2;
        rc.max_epochs = 3.0;
        table_ = new resilience_table(pipeline.analyze(rc));
    }
    static void TearDownTestSuite() {
        delete shared_;
        delete fleet_;
        delete table_;
        shared_ = nullptr;
        fleet_ = nullptr;
        table_ = nullptr;
    }

    workload& w() { return *shared_; }
    const std::vector<chip>& fleet() { return *fleet_; }
    const resilience_table& table() { return *table_; }

    reduce_pipeline make_pipeline() {
        return reduce_pipeline(*shared_->model, shared_->pretrained, shared_->train_data,
                               shared_->test_data, shared_->array, shared_->trainer_cfg);
    }

    static workload* shared_;
    static std::vector<chip>* fleet_;
    static resilience_table* table_;
};

workload* PipelineFixture::shared_ = nullptr;
std::vector<chip>* PipelineFixture::fleet_ = nullptr;
resilience_table* PipelineFixture::table_ = nullptr;

TEST_F(PipelineFixture, ReducePolicyCoversFleet) {
    reduce_pipeline pipeline = make_pipeline();
    selector_config sel;
    sel.accuracy_target = 0.85;
    const policy_outcome outcome = pipeline.run_reduce(fleet(), table(), sel, "reduce-max");
    EXPECT_EQ(outcome.policy_name, "reduce-max");
    ASSERT_EQ(outcome.chips.size(), fleet().size());
    for (const chip_outcome& c : outcome.chips) {
        EXPECT_GE(c.epochs_run, 0.0);
        EXPECT_GE(c.final_accuracy, 0.0);
        EXPECT_LE(c.final_accuracy, 1.0);
        EXPECT_EQ(c.meets_constraint, c.final_accuracy >= 0.85);
    }
    EXPECT_GE(outcome.fraction_meeting(), 0.0);
    EXPECT_LE(outcome.fraction_meeting(), 1.0);
    EXPECT_NEAR(outcome.mean_epochs() * static_cast<double>(fleet().size()),
                outcome.total_epochs(), 1e-9);
}

TEST_F(PipelineFixture, FixedPolicyRunsRequestedEpochs) {
    reduce_pipeline pipeline = make_pipeline();
    const policy_outcome outcome = pipeline.run_fixed(fleet(), 0.5, 0.85, "fixed-0.5");
    for (const chip_outcome& c : outcome.chips) {
        EXPECT_DOUBLE_EQ(c.epochs_allocated, 0.5);
        // steps quantization can push epochs_run slightly above allocation
        EXPECT_NEAR(c.epochs_run, 0.5, 0.2);
    }
}

TEST_F(PipelineFixture, ZeroEpochFixedPolicyIsEvaluationOnly) {
    reduce_pipeline pipeline = make_pipeline();
    const policy_outcome outcome = pipeline.run_fixed(fleet(), 0.0, 0.85, "fixed-0");
    for (const chip_outcome& c : outcome.chips) {
        EXPECT_DOUBLE_EQ(c.epochs_run, 0.0);
        EXPECT_DOUBLE_EQ(c.final_accuracy, c.accuracy_before);
    }
}

TEST_F(PipelineFixture, ModelRestoredBetweenChips) {
    reduce_pipeline pipeline = make_pipeline();
    // Simulate a caller that probed the shared model and left a mask behind:
    // the legacy contract still guarantees an unmasked model afterwards.
    parameter* first = w().model->parameters()[0];
    first->mask = tensor(first->value.shape(), 1.0f);
    (void)pipeline.run_fixed(fleet(), 0.2, 0.85, "fixed");
    // After the run the model must hold the pretrained weights, unmasked.
    for (std::size_t i = 0; i < w().pretrained.size(); ++i) {
        EXPECT_TRUE(w().model->parameters()[i]->value == w().pretrained.values[i]);
        EXPECT_FALSE(w().model->parameters()[i]->has_mask());
    }
}

TEST_F(PipelineFixture, SinkReceivesTunedModels) {
    reduce_pipeline pipeline = make_pipeline();
    std::vector<std::size_t> seen_ids;
    pipeline.set_model_sink([&](const chip& c, const model_snapshot& snap) {
        seen_ids.push_back(c.id);
        EXPECT_EQ(snap.size(), w().pretrained.size());
    });
    (void)pipeline.run_fixed(fleet(), 0.1, 0.85, "fixed");
    ASSERT_EQ(seen_ids.size(), fleet().size());
    for (std::size_t i = 0; i < fleet().size(); ++i) { EXPECT_EQ(seen_ids[i], fleet()[i].id); }
}

TEST_F(PipelineFixture, MoreEpochsNeverHurtOnAverage) {
    reduce_pipeline pipeline = make_pipeline();
    const policy_outcome low = pipeline.run_fixed(fleet(), 0.1, 0.85, "low");
    const policy_outcome high = pipeline.run_fixed(fleet(), 2.0, 0.85, "high");
    double low_mean = 0.0;
    double high_mean = 0.0;
    for (std::size_t i = 0; i < fleet().size(); ++i) {
        low_mean += low.chips[i].final_accuracy;
        high_mean += high.chips[i].final_accuracy;
    }
    EXPECT_GE(high_mean, low_mean - 0.02);  // small tolerance for noise
    EXPECT_GE(high.fraction_meeting(), low.fraction_meeting() - 1e-9);
}

TEST_F(PipelineFixture, EmptyFleetRejected) {
    reduce_pipeline pipeline = make_pipeline();
    selector_config sel;
    sel.accuracy_target = 0.85;
    EXPECT_THROW(pipeline.run_reduce({}, table(), sel, "x"), error);
    EXPECT_THROW(pipeline.run_fixed({}, 1.0, 0.85, "x"), error);
    EXPECT_THROW(pipeline.run_fixed(fleet(), -1.0, 0.85, "x"), error);
}

TEST_F(PipelineFixture, PolicyOutcomeAggregates) {
    policy_outcome outcome;
    outcome.chips.push_back({.epochs_run = 1.0, .final_accuracy = 0.9,
                             .meets_constraint = true});
    outcome.chips.push_back({.epochs_run = 3.0, .final_accuracy = 0.8,
                             .meets_constraint = false});
    EXPECT_DOUBLE_EQ(outcome.total_epochs(), 4.0);
    EXPECT_DOUBLE_EQ(outcome.mean_epochs(), 2.0);
    EXPECT_DOUBLE_EQ(outcome.fraction_meeting(), 0.5);
    const policy_outcome empty;
    EXPECT_DOUBLE_EQ(empty.mean_epochs(), 0.0);
    EXPECT_DOUBLE_EQ(empty.fraction_meeting(), 0.0);
}

TEST_F(PipelineFixture, MitigationComparisonOrdering) {
    mitigation_config cfg;
    cfg.fault_rates = {0.2};
    cfg.fat_epochs = 1.5;
    const std::vector<mitigation_outcome> outcomes =
        compare_mitigations(*w().model, w().pretrained, w().train_data, w().test_data,
                            w().array, w().trainer_cfg, cfg);
    ASSERT_EQ(outcomes.size(), 4u);
    double unmitigated = 0.0;
    double fap = 0.0;
    double fam = 0.0;
    double fat = 0.0;
    for (const mitigation_outcome& o : outcomes) {
        if (o.technique == "unmitigated") { unmitigated = o.accuracy; }
        if (o.technique == "fap") { fap = o.accuracy; }
        if (o.technique == "fam") { fam = o.accuracy; }
        if (o.technique == "fat") { fat = o.accuracy; }
    }
    // The paper's hierarchy: FAT >= FAM >= FAP >> unmitigated. At this tiny
    // test scale FAM can come within noise of a short FAT run, so the
    // adjacent comparisons carry a small tolerance.
    EXPECT_GT(fap, unmitigated);
    EXPECT_GE(fam, fap - 0.05);
    EXPECT_GE(fat, fam - 0.05);
    EXPECT_GT(fat, unmitigated + 0.1);
}

TEST_F(PipelineFixture, CorruptWeightsRespectsKinds) {
    restore_parameters(w().model->parameters(), w().pretrained);
    fault_grid faults(w().array.rows, w().array.cols);
    faults.set(0, 0, pe_fault::stuck_weight_max);
    faults.set(1, 1, pe_fault::stuck_weight_zero);
    corrupt_weights_for_faults(*w().model, w().array, faults);

    const auto layers = collect_mapped_layers(*w().model);
    const tensor& weights = layers[0].weight->value;
    float w_max = 0.0f;
    // w_max was computed from the corrupted tensor's source (pretrained),
    // so recompute from the restored snapshot for the assertion.
    for (const float v : w().pretrained.values[0].data()) {
        w_max = std::max(w_max, std::abs(v));
    }
    EXPECT_FLOAT_EQ(weights.at2(0, 0), w_max);   // (i=0, o=0) on PE (0,0)
    EXPECT_FLOAT_EQ(weights.at2(1, 1), 0.0f);    // (i=1, o=1) on PE (1,1)
    restore_parameters(w().model->parameters(), w().pretrained);
}

}  // namespace
}  // namespace reduce
