#include "tensor/tensor.h"

#include <cmath>
#include <sstream>

#include "util/error.h"

namespace reduce {

std::string shape_to_string(const shape_t& shape) {
    std::ostringstream oss;
    oss << '[';
    for (std::size_t i = 0; i < shape.size(); ++i) {
        if (i > 0) { oss << ", "; }
        oss << shape[i];
    }
    oss << ']';
    return oss.str();
}

std::size_t shape_numel(const shape_t& shape) {
    std::size_t n = 1;
    for (const std::size_t extent : shape) { n *= extent; }
    return n;
}

tensor::tensor(shape_t shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {}

tensor::tensor(shape_t shape, float value)
    : shape_(std::move(shape)), data_(shape_numel(shape_), value) {}

tensor::tensor(shape_t shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
    REDUCE_CHECK(data_.size() == shape_numel(shape_),
                 "value count " << data_.size() << " does not match shape "
                                << shape_to_string(shape_));
}

tensor tensor::from_values(std::initializer_list<float> values) {
    return tensor({values.size()}, std::vector<float>(values));
}

tensor tensor::from_rows(std::initializer_list<std::initializer_list<float>> rows) {
    REDUCE_CHECK(rows.size() > 0, "from_rows requires at least one row");
    const std::size_t cols = rows.begin()->size();
    std::vector<float> values;
    values.reserve(rows.size() * cols);
    for (const auto& row : rows) {
        REDUCE_CHECK(row.size() == cols, "from_rows requires equal-length rows");
        values.insert(values.end(), row.begin(), row.end());
    }
    return tensor({rows.size(), cols}, std::move(values));
}

std::size_t tensor::extent(std::size_t axis) const {
    REDUCE_CHECK(axis < shape_.size(),
                 "axis " << axis << " out of range for " << describe());
    return shape_[axis];
}

std::size_t tensor::flat_index(std::span<const std::size_t> indices) const {
    if (indices.size() != shape_.size()) {
        throw shape_error("index rank " + std::to_string(indices.size()) +
                          " does not match tensor rank " + std::to_string(shape_.size()));
    }
    std::size_t flat = 0;
    for (std::size_t axis = 0; axis < shape_.size(); ++axis) {
        if (indices[axis] >= shape_[axis]) {
            throw shape_error("index " + std::to_string(indices[axis]) + " out of range on axis " +
                              std::to_string(axis) + " of " + describe());
        }
        flat = flat * shape_[axis] + indices[axis];
    }
    return flat;
}

float& tensor::at(std::span<const std::size_t> indices) { return data_[flat_index(indices)]; }

float tensor::at(std::span<const std::size_t> indices) const {
    return data_[flat_index(indices)];
}

float& tensor::at2(std::size_t row, std::size_t col) {
    const std::size_t idx[] = {row, col};
    return at(idx);
}

float tensor::at2(std::size_t row, std::size_t col) const {
    const std::size_t idx[] = {row, col};
    return at(idx);
}

float& tensor::at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
    const std::size_t idx[] = {n, c, h, w};
    return at(idx);
}

float tensor::at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const {
    const std::size_t idx[] = {n, c, h, w};
    return at(idx);
}

void tensor::fill(float value) {
    for (auto& element : data_) { element = value; }
}

tensor tensor::reshaped(shape_t new_shape) const {
    tensor copy = *this;
    copy.reshape(std::move(new_shape));
    return copy;
}

void tensor::reshape(shape_t new_shape) {
    REDUCE_CHECK(shape_numel(new_shape) == data_.size(),
                 "cannot reshape " << describe() << " to " << shape_to_string(new_shape));
    shape_ = std::move(new_shape);
}

void tensor::ensure_shape(const shape_t& new_shape) {
    const std::size_t needed = shape_numel(new_shape);
    if (needed != data_.size()) { data_.resize(needed); }
    shape_ = new_shape;
}

bool tensor::operator==(const tensor& other) const {
    return shape_ == other.shape_ && data_ == other.data_;
}

bool tensor::allclose(const tensor& other, float tol) const {
    if (shape_ != other.shape_) { return false; }
    for (std::size_t i = 0; i < data_.size(); ++i) {
        if (std::abs(data_[i] - other.data_[i]) > tol) { return false; }
    }
    return true;
}

double tensor::sum() const {
    double acc = 0.0;
    for (const float v : data_) { acc += v; }
    return acc;
}

double tensor::mean() const {
    REDUCE_CHECK(!data_.empty(), "mean of empty tensor");
    return sum() / static_cast<double>(data_.size());
}

std::size_t tensor::argmax() const {
    REDUCE_CHECK(!data_.empty(), "argmax of empty tensor");
    std::size_t best = 0;
    for (std::size_t i = 1; i < data_.size(); ++i) {
        if (data_[i] > data_[best]) { best = i; }
    }
    return best;
}

std::string tensor::describe() const {
    return "tensor" + shape_to_string(shape_);
}

}  // namespace reduce
