#include "tensor/conv.h"

#include <limits>

#include "tensor/ops.h"
#include "util/error.h"

namespace reduce {

std::size_t conv2d_spec::out_h(std::size_t in_h) const {
    REDUCE_CHECK(in_h + 2 * padding >= kernel_h,
                 "conv2d kernel_h " << kernel_h << " larger than padded input " << in_h);
    REDUCE_CHECK(stride > 0, "conv2d stride must be positive");
    return (in_h + 2 * padding - kernel_h) / stride + 1;
}

std::size_t conv2d_spec::out_w(std::size_t in_w) const {
    REDUCE_CHECK(in_w + 2 * padding >= kernel_w,
                 "conv2d kernel_w " << kernel_w << " larger than padded input " << in_w);
    REDUCE_CHECK(stride > 0, "conv2d stride must be positive");
    return (in_w + 2 * padding - kernel_w) / stride + 1;
}

tensor im2col(const tensor& image, const conv2d_spec& spec) {
    REDUCE_CHECK(image.dim() == 3, "im2col expects [C,H,W], got " << image.describe());
    const std::size_t channels = image.extent(0);
    REDUCE_CHECK(channels == spec.in_channels,
                 "im2col channel mismatch: image has " << channels << ", spec expects "
                                                       << spec.in_channels);
    const std::size_t in_h = image.extent(1);
    const std::size_t in_w = image.extent(2);
    const std::size_t oh = spec.out_h(in_h);
    const std::size_t ow = spec.out_w(in_w);
    tensor columns({spec.patch_size(), oh * ow});
    const float* src = image.raw();
    float* dst = columns.raw();
    const std::size_t out_cols = oh * ow;
    std::size_t patch_row = 0;
    for (std::size_t c = 0; c < channels; ++c) {
        for (std::size_t kh = 0; kh < spec.kernel_h; ++kh) {
            for (std::size_t kw = 0; kw < spec.kernel_w; ++kw, ++patch_row) {
                float* drow = dst + patch_row * out_cols;
                for (std::size_t oy = 0; oy < oh; ++oy) {
                    // Signed arithmetic for the padded coordinate.
                    const std::ptrdiff_t iy = static_cast<std::ptrdiff_t>(oy * spec.stride + kh) -
                                              static_cast<std::ptrdiff_t>(spec.padding);
                    for (std::size_t ox = 0; ox < ow; ++ox) {
                        const std::ptrdiff_t ix =
                            static_cast<std::ptrdiff_t>(ox * spec.stride + kw) -
                            static_cast<std::ptrdiff_t>(spec.padding);
                        float value = 0.0f;
                        if (iy >= 0 && iy < static_cast<std::ptrdiff_t>(in_h) && ix >= 0 &&
                            ix < static_cast<std::ptrdiff_t>(in_w)) {
                            value = src[(c * in_h + static_cast<std::size_t>(iy)) * in_w +
                                        static_cast<std::size_t>(ix)];
                        }
                        drow[oy * ow + ox] = value;
                    }
                }
            }
        }
    }
    return columns;
}

tensor col2im(const tensor& columns, const conv2d_spec& spec, std::size_t in_h,
              std::size_t in_w) {
    REDUCE_CHECK(columns.dim() == 2, "col2im expects rank-2 input, got " << columns.describe());
    const std::size_t oh = spec.out_h(in_h);
    const std::size_t ow = spec.out_w(in_w);
    REDUCE_CHECK(columns.extent(0) == spec.patch_size() && columns.extent(1) == oh * ow,
                 "col2im shape mismatch: " << columns.describe());
    tensor image({spec.in_channels, in_h, in_w});
    const float* src = columns.raw();
    float* dst = image.raw();
    const std::size_t out_cols = oh * ow;
    std::size_t patch_row = 0;
    for (std::size_t c = 0; c < spec.in_channels; ++c) {
        for (std::size_t kh = 0; kh < spec.kernel_h; ++kh) {
            for (std::size_t kw = 0; kw < spec.kernel_w; ++kw, ++patch_row) {
                const float* srow = src + patch_row * out_cols;
                for (std::size_t oy = 0; oy < oh; ++oy) {
                    const std::ptrdiff_t iy = static_cast<std::ptrdiff_t>(oy * spec.stride + kh) -
                                              static_cast<std::ptrdiff_t>(spec.padding);
                    if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(in_h)) { continue; }
                    for (std::size_t ox = 0; ox < ow; ++ox) {
                        const std::ptrdiff_t ix =
                            static_cast<std::ptrdiff_t>(ox * spec.stride + kw) -
                            static_cast<std::ptrdiff_t>(spec.padding);
                        if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(in_w)) { continue; }
                        dst[(c * in_h + static_cast<std::size_t>(iy)) * in_w +
                            static_cast<std::size_t>(ix)] += srow[oy * ow + ox];
                    }
                }
            }
        }
    }
    return image;
}

namespace {

void check_conv_inputs(const tensor& input, const tensor& weight, const conv2d_spec& spec) {
    REDUCE_CHECK(input.dim() == 4, "conv2d expects input [N,C,H,W], got " << input.describe());
    REDUCE_CHECK(weight.dim() == 4,
                 "conv2d expects weight [O,C,kh,kw], got " << weight.describe());
    REDUCE_CHECK(input.extent(1) == spec.in_channels,
                 "conv2d input channels " << input.extent(1) << " != spec " << spec.in_channels);
    REDUCE_CHECK(weight.extent(0) == spec.out_channels && weight.extent(1) == spec.in_channels &&
                     weight.extent(2) == spec.kernel_h && weight.extent(3) == spec.kernel_w,
                 "conv2d weight " << weight.describe() << " does not match spec");
}

}  // namespace

tensor conv2d_forward(const tensor& input, const tensor& weight, const tensor& bias,
                      const conv2d_spec& spec) {
    check_conv_inputs(input, weight, spec);
    const std::size_t batch = input.extent(0);
    const std::size_t in_h = input.extent(2);
    const std::size_t in_w = input.extent(3);
    const std::size_t oh = spec.out_h(in_h);
    const std::size_t ow = spec.out_w(in_w);
    const bool has_bias = !bias.empty();
    if (has_bias) {
        REDUCE_CHECK(bias.dim() == 1 && bias.extent(0) == spec.out_channels,
                     "conv2d bias " << bias.describe() << " does not match out_channels");
    }

    // Weight viewed as [out_c, patch_size] for the lowered GEMM.
    const tensor weight2d = weight.reshaped({spec.out_channels, spec.patch_size()});
    tensor output({batch, spec.out_channels, oh, ow});
    float* out_ptr = output.raw();
    const std::size_t image_elems = spec.in_channels * in_h * in_w;
    const std::size_t out_plane = oh * ow;

    for (std::size_t n = 0; n < batch; ++n) {
        tensor image({spec.in_channels, in_h, in_w},
                     std::vector<float>(input.raw() + n * image_elems,
                                        input.raw() + (n + 1) * image_elems));
        const tensor columns = im2col(image, spec);
        const tensor result = matmul(weight2d, columns);  // [out_c, oh*ow]
        const float* res_ptr = result.raw();
        for (std::size_t oc = 0; oc < spec.out_channels; ++oc) {
            const float b = has_bias ? bias[oc] : 0.0f;
            float* dst = out_ptr + (n * spec.out_channels + oc) * out_plane;
            const float* srow = res_ptr + oc * out_plane;
            for (std::size_t i = 0; i < out_plane; ++i) { dst[i] = srow[i] + b; }
        }
    }
    return output;
}

conv2d_grads conv2d_backward(const tensor& input, const tensor& weight,
                             const tensor& grad_output, const conv2d_spec& spec) {
    check_conv_inputs(input, weight, spec);
    const std::size_t batch = input.extent(0);
    const std::size_t in_h = input.extent(2);
    const std::size_t in_w = input.extent(3);
    const std::size_t oh = spec.out_h(in_h);
    const std::size_t ow = spec.out_w(in_w);
    REDUCE_CHECK(grad_output.dim() == 4 && grad_output.extent(0) == batch &&
                     grad_output.extent(1) == spec.out_channels && grad_output.extent(2) == oh &&
                     grad_output.extent(3) == ow,
                 "conv2d grad_output " << grad_output.describe() << " does not match geometry");

    const tensor weight2d = weight.reshaped({spec.out_channels, spec.patch_size()});
    conv2d_grads grads{tensor(input.shape()), tensor(weight.shape()), tensor({spec.out_channels})};
    tensor grad_weight2d({spec.out_channels, spec.patch_size()});

    const std::size_t image_elems = spec.in_channels * in_h * in_w;
    const std::size_t out_plane = oh * ow;
    float* gin_ptr = grads.grad_input.raw();
    float* gb_ptr = grads.grad_bias.raw();

    for (std::size_t n = 0; n < batch; ++n) {
        tensor image({spec.in_channels, in_h, in_w},
                     std::vector<float>(input.raw() + n * image_elems,
                                        input.raw() + (n + 1) * image_elems));
        const tensor columns = im2col(image, spec);  // [patch, oh*ow]
        tensor grad_out2d({spec.out_channels, out_plane},
                          std::vector<float>(
                              grad_output.raw() + n * spec.out_channels * out_plane,
                              grad_output.raw() + (n + 1) * spec.out_channels * out_plane));

        // dW += dY · colsᵀ  → matmul_nt(grad_out2d [O, P], columns [patch, P]).
        const tensor gw = matmul_nt(grad_out2d, columns);  // [O, patch]
        add_inplace(grad_weight2d, gw);

        // db += row sums of dY.
        const float* go = grad_out2d.raw();
        for (std::size_t oc = 0; oc < spec.out_channels; ++oc) {
            float acc = 0.0f;
            const float* row = go + oc * out_plane;
            for (std::size_t i = 0; i < out_plane; ++i) { acc += row[i]; }
            gb_ptr[oc] += acc;
        }

        // dX = col2im(Wᵀ · dY).
        const tensor grad_cols = matmul_tn(weight2d, grad_out2d);  // [patch, oh*ow]
        const tensor grad_image = col2im(grad_cols, spec, in_h, in_w);
        const float* gi = grad_image.raw();
        float* dst = gin_ptr + n * image_elems;
        for (std::size_t i = 0; i < image_elems; ++i) { dst[i] += gi[i]; }
    }
    grads.grad_weight = grad_weight2d.reshaped(weight.shape());
    return grads;
}

pool2d_result max_pool2d_forward(const tensor& input, const pool2d_spec& spec) {
    REDUCE_CHECK(input.dim() == 4, "max_pool2d expects [N,C,H,W], got " << input.describe());
    REDUCE_CHECK(spec.kernel > 0 && spec.stride > 0, "pool kernel/stride must be positive");
    const std::size_t batch = input.extent(0);
    const std::size_t channels = input.extent(1);
    const std::size_t in_h = input.extent(2);
    const std::size_t in_w = input.extent(3);
    REDUCE_CHECK(in_h >= spec.kernel && in_w >= spec.kernel,
                 "pool kernel larger than input " << input.describe());
    const std::size_t oh = (in_h - spec.kernel) / spec.stride + 1;
    const std::size_t ow = (in_w - spec.kernel) / spec.stride + 1;

    pool2d_result result{tensor({batch, channels, oh, ow}), {}};
    result.argmax.assign(batch * channels * oh * ow, 0);
    const float* src = input.raw();
    float* dst = result.output.raw();
    std::size_t out_idx = 0;
    for (std::size_t n = 0; n < batch; ++n) {
        for (std::size_t c = 0; c < channels; ++c) {
            const float* plane = src + (n * channels + c) * in_h * in_w;
            for (std::size_t oy = 0; oy < oh; ++oy) {
                for (std::size_t ox = 0; ox < ow; ++ox, ++out_idx) {
                    float best = -std::numeric_limits<float>::infinity();
                    std::size_t best_idx = 0;
                    for (std::size_t ky = 0; ky < spec.kernel; ++ky) {
                        const std::size_t iy = oy * spec.stride + ky;
                        for (std::size_t kx = 0; kx < spec.kernel; ++kx) {
                            const std::size_t ix = ox * spec.stride + kx;
                            const std::size_t flat = iy * in_w + ix;
                            if (plane[flat] > best) {
                                best = plane[flat];
                                best_idx = (n * channels + c) * in_h * in_w + flat;
                            }
                        }
                    }
                    dst[out_idx] = best;
                    result.argmax[out_idx] = best_idx;
                }
            }
        }
    }
    return result;
}

tensor max_pool2d_backward(const tensor& grad_output, const std::vector<std::size_t>& argmax,
                           const shape_t& input_shape) {
    REDUCE_CHECK(grad_output.numel() == argmax.size(),
                 "pool backward: argmax size " << argmax.size() << " != grad elements "
                                               << grad_output.numel());
    tensor grad_input(input_shape);
    float* dst = grad_input.raw();
    const float* src = grad_output.raw();
    for (std::size_t i = 0; i < argmax.size(); ++i) {
        REDUCE_CHECK(argmax[i] < grad_input.numel(), "pool backward: argmax out of range");
        dst[argmax[i]] += src[i];
    }
    return grad_input;
}

tensor global_avg_pool_forward(const tensor& input) {
    REDUCE_CHECK(input.dim() == 4, "global_avg_pool expects [N,C,H,W], got " << input.describe());
    const std::size_t batch = input.extent(0);
    const std::size_t channels = input.extent(1);
    const std::size_t plane = input.extent(2) * input.extent(3);
    REDUCE_CHECK(plane > 0, "global_avg_pool over empty plane");
    tensor output({batch, channels});
    const float* src = input.raw();
    float* dst = output.raw();
    const float inv = 1.0f / static_cast<float>(plane);
    for (std::size_t nc = 0; nc < batch * channels; ++nc) {
        float acc = 0.0f;
        const float* p = src + nc * plane;
        for (std::size_t i = 0; i < plane; ++i) { acc += p[i]; }
        dst[nc] = acc * inv;
    }
    return output;
}

tensor global_avg_pool_backward(const tensor& grad_output, const shape_t& input_shape) {
    REDUCE_CHECK(input_shape.size() == 4, "global_avg_pool backward expects rank-4 input shape");
    const std::size_t batch = input_shape[0];
    const std::size_t channels = input_shape[1];
    const std::size_t plane = input_shape[2] * input_shape[3];
    REDUCE_CHECK(grad_output.dim() == 2 && grad_output.extent(0) == batch &&
                     grad_output.extent(1) == channels,
                 "global_avg_pool backward grad " << grad_output.describe() << " mismatch");
    tensor grad_input(input_shape);
    const float* src = grad_output.raw();
    float* dst = grad_input.raw();
    const float inv = 1.0f / static_cast<float>(plane);
    for (std::size_t nc = 0; nc < batch * channels; ++nc) {
        const float g = src[nc] * inv;
        float* p = dst + nc * plane;
        for (std::size_t i = 0; i < plane; ++i) { p[i] = g; }
    }
    return grad_input;
}

}  // namespace reduce
