// Fault-Aware Training (FAT) — Step 3 of the Reduce framework.
//
// Retrains a masked model for an exact (possibly fractional) number of
// epochs, evaluating test accuracy at a grid of epoch checkpoints. The
// trainer assumes fault masks are already attached (attach_fault_masks);
// the mask-aware optimizer keeps pruned weights at zero, so the network
// being trained is exactly the function the damaged chip computes.
//
// Threading: the trainer itself is single-threaded per episode, but every
// forward/backward/eval it runs draws on the process-wide intra-op budget
// (util/thread_pool.h, --gemm-threads) — the fleet executor and sweep
// engine scope that budget per run, and single-chip harnesses set it
// directly. The budget never changes a result bit (never-split-K rule of
// tensor/gemm.h), only wall-clock time per epoch.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "data/loader.h"
#include "fault/scenario.h"
#include "nn/models.h"
#include "nn/optim.h"

namespace reduce {

/// Hyper-parameters of one retraining run.
struct fat_config {
    std::size_t batch_size = 64;
    double learning_rate = 0.05;
    double momentum = 0.9;
    double weight_decay = 0.0;
    double grad_clip = 0.0;        ///< 0 disables clipping
    std::uint64_t shuffle_seed = 99;
};

/// One point of a retraining trajectory.
struct training_point {
    double epochs = 0.0;         ///< epochs completed when evaluated
    double test_accuracy = 0.0;  ///< in [0, 1]
};

/// Outcome of a retraining run.
struct fat_result {
    std::vector<training_point> trajectory;  ///< includes the epoch-0 point
    double final_accuracy = 0.0;
    double epochs_run = 0.0;
    std::size_t steps_run = 0;
    double train_seconds = 0.0;
    /// Timeline accounting (all zero for event-free runs).
    std::size_t events_applied = 0;  ///< fault-timeline events fired mid-run
    std::size_t rollbacks = 0;       ///< recoveries to the last finite checkpoint
    std::size_t restarts = 0;        ///< restart-from-scratch resets at events
    /// Training diverged to non-finite state and the run stopped early
    /// (after exhausting any rollback budget). final_accuracy is reported
    /// as exactly 0.0 — loud and deterministic, never a propagated NaN.
    bool hit_nonfinite = false;
};

/// Mid-run fault-event hooks: how a fault timeline plugs into train().
///
/// The trainer owns WHEN (event epochs are merged into the checkpoint
/// sequence and fire at the same step boundaries on every path) and the
/// recovery discipline; the caller owns WHAT an event does via `on_event`,
/// which must rebuild the fault grid and re-attach masks in place
/// (fault_state_guard::swap_masks) — the trainer then re-zeroes optimizer
/// state under the new masks, takes an eval point, and continues.
struct train_event_hooks {
    /// Ascending event epochs, each > 0. Events at or beyond the epoch
    /// budget never fire. Index i of this list is passed to on_event.
    std::vector<double> event_epochs;
    /// Applies event i to the model's masks (and the caller's grid).
    std::function<void(std::size_t event_index)> on_event;
    recovery_mode mode = recovery_mode::recover;
    /// recover mode: rollbacks to the last finite checkpoint allowed
    /// before the run gives up (hit_nonfinite). Each rollback halves the
    /// learning rate so the deterministic retry takes a different — tamer —
    /// trajectory than the one that diverged.
    std::size_t rollback_budget = 2;
};

/// Rows one evaluation forward pass covers: large enough to amortize
/// per-batch costs, bounded to keep activation memory flat on big test
/// sets. Shared by fault_aware_trainer::evaluate and the batched
/// multi-mask evaluator so their batch splits (and thus memory behaviour)
/// stay comparable — splits never change results.
inline std::size_t eval_batch_rows(const fat_config& cfg) {
    return cfg.batch_size > 256 ? cfg.batch_size : 256;
}

/// Builds an epoch-checkpoint grid: `fine_step` spacing up to `fine_until`,
/// then `coarse_step` spacing up to `max_epochs` (inclusive). All harnesses
/// share this so trajectories are comparable.
std::vector<double> make_eval_grid(double max_epochs, double fine_until, double fine_step,
                                   double coarse_step);

/// First trajectory epoch value whose accuracy meets `target`; nullopt when
/// the run never reaches it (censored).
std::optional<double> epochs_to_reach(const std::vector<training_point>& trajectory,
                                      double target);

/// Accuracy at the largest checkpoint <= `epochs` (trajectory must start at
/// epoch 0).
double accuracy_at_epochs(const std::vector<training_point>& trajectory, double epochs);

/// Retraining engine bound to one model + datasets.
class fault_aware_trainer {
public:
    /// The trainer keeps references; all must outlive it.
    fault_aware_trainer(sequential& model, const dataset& train_data, const dataset& test_data,
                        fat_config cfg);

    /// Test-set accuracy of the model as-is (eval mode, full test set).
    double evaluate();

    /// Trains for `epoch_budget` epochs (0 allowed → just the epoch-0 eval),
    /// evaluating at every checkpoint of `eval_grid` that is <= budget and
    /// at the budget itself. A fresh optimizer and reshuffled loader are
    /// used per call, so runs are independent given the config seed.
    ///
    /// `epoch0_accuracy` injects a precomputed trajectory[0] value instead
    /// of running the epoch-0 evaluation — the hook the batched multi-mask
    /// evaluator uses after computing a whole group's epoch-0 accuracies in
    /// one shared pass. evaluate() is pure for a fixed model state, so an
    /// injected value that was computed on the same masked weights (and
    /// batch-norm statistics) leaves the result byte-identical to the
    /// uninjected run while skipping one full pass over the test set.
    ///
    /// `hooks` (optional) drives fault-timeline events: event epochs join
    /// the checkpoint sequence, each firing records an eval point, and the
    /// recovery discipline (recover/rollback vs restart) follows
    /// hooks->mode. nullptr or an empty event list leaves event-free runs
    /// byte-identical to the pre-hook trainer. Independent of hooks,
    /// training that diverges to non-finite loss or weights now stops
    /// loudly (fat_result::hit_nonfinite) instead of silently training on
    /// NaNs — the serial twin of the grouped trainer's detection.
    fat_result train(double epoch_budget, const std::vector<double>& eval_grid,
                     const std::optional<double>& epoch0_accuracy = std::nullopt,
                     const train_event_hooks* hooks = nullptr);

    /// Convenience: train for the budget with a single final evaluation.
    fat_result train(double epoch_budget);

    const fat_config& config() const { return cfg_; }

private:
    sequential& model_;
    const dataset& train_data_;
    const dataset& test_data_;
    fat_config cfg_;
};

}  // namespace reduce
