// Functional model of a weight-stationary systolic array with faults.
//
// This is the ground-truth executor: it computes a GEMM the way the damaged
// hardware would, PE by PE, honoring each PE's fault state. The training
// stack never calls this in its hot loop — instead the fault module derives
// a weight mask and the tests in tests/accel_equivalence_test.cpp prove that
// masked execution on healthy hardware is bit-identical to FAP-bypassed
// execution here. That equivalence is what licenses the fast path.
#pragma once

#include "accel/array_config.h"
#include "accel/fault_grid.h"
#include "accel/mapping.h"
#include "tensor/tensor.h"

namespace reduce {

/// Executes GEMMs on a (possibly faulty) weight-stationary PE array.
class systolic_array {
public:
    /// The array adopts the geometry of `config`; `faults` must match it.
    systolic_array(const array_config& config, fault_grid faults);

    /// All-healthy array.
    explicit systolic_array(const array_config& config);

    const array_config& config() const { return config_; }
    const fault_grid& faults() const { return faults_; }

    /// Mutable fault state (tests inject faults incrementally).
    fault_grid& faults() { return faults_; }

    /// Runs Y = X · Wᵀ through the array.
    /// activations: [M, fan_in]; weight: [fan_out, fan_in] (linear-layer
    /// layout); returns [M, fan_out]. The mapping decides which PE hosts
    /// each weight; each PE applies its fault behaviour (pe_mac).
    ///
    /// `w_max` is the stuck-at magnitude; pass a non-positive value to use
    /// max|W| (per-layer weight range).
    tensor run_gemm(const tensor& activations, const tensor& weight,
                    const gemm_mapping& mapping, float w_max = -1.0f) const;

    /// Applies FAP: turns every faulty PE into a bypassed one. Returns the
    /// number of PEs repaired.
    std::size_t apply_fap();

private:
    array_config config_;
    fault_grid faults_;
};

/// Cost/performance estimate of one GEMM on the array.
struct gemm_perf {
    std::uint64_t cycles = 0;         ///< total cycles (load + pipelined stream)
    std::uint64_t weight_loads = 0;   ///< weights written into PEs
    std::uint64_t useful_macs = 0;    ///< MACs on healthy PEs
    std::uint64_t lost_macs = 0;      ///< MACs skipped on bypassed/faulty PEs
    double utilization = 0.0;         ///< useful MACs / (cycles * PE count)
    double energy_nj = 0.0;

    /// Wall time at the configured clock.
    double microseconds(const array_config& config) const;
};

/// Analytic performance model for a batch-M GEMM with the given mapping.
/// Faults reduce useful work (bypassed MACs are counted in lost_macs) but do
/// not change cycle count — FAP's key property: no latency penalty.
gemm_perf estimate_gemm_perf(const array_config& config, const gemm_mapping& mapping,
                             std::size_t batch, const fault_grid* faults = nullptr);

/// Accumulates per-layer estimates into a network total.
gemm_perf accumulate_perf(const gemm_perf& a, const gemm_perf& b);

}  // namespace reduce
