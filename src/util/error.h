// Error handling primitives shared by every reduce module.
//
// Follows the project convention: precondition violations and unrecoverable
// runtime failures throw reduce::error with a formatted message; callers that
// can recover catch it at a boundary (CLI mains, test fixtures).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace reduce {

/// Base exception for all failures raised by the reduce libraries.
class error : public std::runtime_error {
public:
    explicit error(const std::string& message) : std::runtime_error(message) {}
};

/// Thrown when an argument violates a documented precondition.
class invalid_argument_error : public error {
public:
    explicit invalid_argument_error(const std::string& message) : error(message) {}
};

/// Thrown when tensor/layer shapes are incompatible.
class shape_error : public error {
public:
    explicit shape_error(const std::string& message) : error(message) {}
};

/// Thrown on (de)serialization failures.
class io_error : public error {
public:
    explicit io_error(const std::string& message) : error(message) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file, int line,
                                             const std::string& message) {
    std::ostringstream oss;
    oss << "check failed: " << expr << " at " << file << ':' << line;
    if (!message.empty()) { oss << " — " << message; }
    throw error(oss.str());
}

}  // namespace detail

}  // namespace reduce

/// Runtime check that throws reduce::error with location info on failure.
/// Usage: REDUCE_CHECK(n > 0, "n must be positive, got " << n);
#define REDUCE_CHECK(expr, msg)                                                        \
    do {                                                                               \
        if (!(expr)) {                                                                 \
            std::ostringstream reduce_check_oss;                                       \
            reduce_check_oss << msg; /* NOLINT */                                      \
            ::reduce::detail::throw_check_failure(#expr, __FILE__, __LINE__,           \
                                                  reduce_check_oss.str());             \
        }                                                                              \
    } while (false)
