// Convolution and pooling primitives (im2col formulation).
//
// conv2d lowers to the matmul  [out_c] x [in_c*kh*kw]  ·  [in_c*kh*kw] x [oh*ow]
// per image — exactly the GEMM shape a weight-stationary systolic array
// executes, which is why the fault-map → weight-mask equivalence proven for
// linear layers carries over to convolutions unchanged.
#pragma once

#include "tensor/tensor.h"

namespace reduce {

/// Static geometry of a conv2d: kernel, stride, padding.
struct conv2d_spec {
    std::size_t in_channels = 0;
    std::size_t out_channels = 0;
    std::size_t kernel_h = 0;
    std::size_t kernel_w = 0;
    std::size_t stride = 1;
    std::size_t padding = 0;

    /// Output spatial height for an input of height `in_h`; throws when the
    /// geometry is inconsistent.
    std::size_t out_h(std::size_t in_h) const;

    /// Output spatial width for an input of width `in_w`.
    std::size_t out_w(std::size_t in_w) const;

    /// Rows of the lowered patch matrix: in_channels * kernel_h * kernel_w.
    std::size_t patch_size() const { return in_channels * kernel_h * kernel_w; }
};

/// Lowers one image [C,H,W] to a patch matrix [patch_size, oh*ow].
tensor im2col(const tensor& image, const conv2d_spec& spec);

/// Adjoint of im2col: accumulates patch-matrix gradients back to [C,H,W].
tensor col2im(const tensor& columns, const conv2d_spec& spec, std::size_t in_h,
              std::size_t in_w);

/// conv2d forward over a batch.
/// input  [N, C, H, W], weight [out_c, in_c, kh, kw], bias [out_c] (optional,
/// pass empty tensor to skip) → output [N, out_c, oh, ow].
tensor conv2d_forward(const tensor& input, const tensor& weight, const tensor& bias,
                      const conv2d_spec& spec);

/// Gradients of conv2d.
struct conv2d_grads {
    tensor grad_input;   ///< [N, C, H, W]
    tensor grad_weight;  ///< [out_c, in_c, kh, kw]
    tensor grad_bias;    ///< [out_c]
};

/// conv2d backward over a batch given upstream gradient [N, out_c, oh, ow].
conv2d_grads conv2d_backward(const tensor& input, const tensor& weight,
                             const tensor& grad_output, const conv2d_spec& spec);

/// 2x2-style max pooling geometry.
struct pool2d_spec {
    std::size_t kernel = 2;
    std::size_t stride = 2;
};

/// Max-pool forward; also returns the flat argmax index per output element
/// for the backward pass.
struct pool2d_result {
    tensor output;                      ///< [N, C, oh, ow]
    std::vector<std::size_t> argmax;    ///< flat input index per output element
};

/// Max-pool over a batch [N, C, H, W]; spatial dims must tile exactly.
pool2d_result max_pool2d_forward(const tensor& input, const pool2d_spec& spec);

/// Max-pool backward: routes each output gradient to its argmax location.
tensor max_pool2d_backward(const tensor& grad_output, const std::vector<std::size_t>& argmax,
                           const shape_t& input_shape);

/// Global average pooling: [N, C, H, W] → [N, C].
tensor global_avg_pool_forward(const tensor& input);

/// Backward of global average pooling.
tensor global_avg_pool_backward(const tensor& grad_output, const shape_t& input_shape);

}  // namespace reduce
