// Grouped train-step walker — K divergent model variants in lockstep.
//
// PR 4's masked-group walker batches *evaluation*: K fault masks over ONE
// shared set of pretrained weights (shared-B grouped GEMM). Training breaks
// that sharing immediately — after the first optimizer step every variant
// owns different weights AND different biases — so this walker runs the
// true grouped form: per-variant A and B operands over a variant-stacked
// batch [K*N, ...], sharing the structure that remains shareable:
//
//   * ONE batch gather and ONE stacked pass per layer — per-layer fixed
//     costs (conv lowering, scatter, allocation, fork/join) are paid once
//     per group instead of once per chip;
//   * conv lowering skips structurally-zero padding rows in BOTH directions
//     (forward activations via gemm_k_subset, backward dX/dW via the
//     compact drivers in tensor/conv.h) — on 1x1-spatial VGG tails that is
//     8/9 of the patch rows;
//   * linear/conv steps always run their FUSED form (bias in the GEMM
//     epilogue, ReLU + keep-mask in the tail) — bit-identical to the
//     unfused serial path by the op_schedule contract, so the walker
//     matches the serial trainer regardless of the ambient fusion toggle.
//
// Determinism contract: after forward+backward on a stacked batch, variant
// g's parameter gradients, caches, and output block are byte-identical to
// running clone g's own sequential::forward/backward on the un-stacked
// batch — at every group size and every --gemm-threads. Stateful layers
// (dropout, batch-norm) are NEVER shared: each variant block is sliced out
// and run through that variant's own layer object, so RNG streams, batch
// statistics, and running stats advance exactly as they do serially.
//
// Finite-operand caveat: the padding-row skips require finite weights
// (forward) and finite upstream gradients (dW). The grouped trainer
// enforces both with loud checks (grouped_nonfinite_error → serial
// fallback); this walker itself does not scan.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/conv_layers.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace reduce {

/// Lockstep forward/backward driver over K structurally identical model
/// variants (clones of one prototype). The walker holds non-owning layer
/// pointers into the variants — they must outlive it and must not be
/// structurally modified while it is in use. Parameter gradients accumulate
/// into each variant's own layers, so the per-variant optimizers see
/// exactly what a serial backward would have left them.
class grouped_train_net {
public:
    /// `variants` must be non-empty and structurally identical (same layer
    /// kinds and shapes in the same order — clones of one prototype).
    explicit grouped_train_net(const std::vector<sequential*>& variants);

    std::size_t groups() const { return groups_; }

    /// Forward over a variant-stacked batch [K*N, ...] (block g = variant
    /// g's rows). Honors each variant's training mode (dropout/BN behave
    /// per variant exactly as their own layer objects dictate). Caches what
    /// backward() needs; call backward before the next training forward.
    tensor forward(const tensor& stacked);

    /// Backward of the last forward; returns the stacked input gradient and
    /// accumulates per-variant parameter gradients into the variants.
    tensor backward(const tensor& grad_stacked);

private:
    struct step {
        enum class kind : std::uint8_t {
            linear_k,
            conv_k,
            relu_k,
            flatten_k,
            max_pool_k,
            global_avg_pool_k,
            per_variant_k,  ///< dropout / batch-norm / anything stateful
        };
        kind k = kind::per_variant_k;
        std::vector<module*> mods;  ///< one per variant, same position
        bool fuse_relu = false;     ///< linear/conv directly followed by relu
        // Per-step caches (valid between one forward and its backward).
        tensor cached_input;                  ///< stacked input (linear/conv/relu)
        shape_t cached_shape;                 ///< input shape (flatten/pools)
        std::vector<std::size_t> argmax;      ///< max-pool routing
        std::vector<std::uint8_t> relu_keep;  ///< fused-ReLU keep mask (stacked NCHW)
    };

    void flatten_variants(const std::vector<sequential*>& variants);
    tensor forward_step(step& st, tensor x);
    tensor backward_step(step& st, tensor grad);

    std::size_t groups_ = 0;
    std::vector<step> steps_;
    /// Flat per-variant layer lists (position-aligned across variants).
    std::vector<std::vector<module*>> flat_;
};

}  // namespace reduce
