// Ablation — binning per-chip retraining amounts into k job classes.
//
// Reduce's per-chip amounts are optimal for accuracy-per-epoch but give a
// production line N distinct retraining jobs. Binning rounds each amount up
// to one of k allocations (optimal DP partition; see core/binning.h).
// This bench sweeps k and reports the epoch overhead; it then actually
// retrains one fleet at a chosen k to confirm the constraint-hit rate can
// only improve (every chip gets >= its selected amount).
//
// Output: CSV (num_bins, jobs, total_epochs, overhead_pct), then one
// verification row per policy.
// Options: --chips 30, --constraint 91, --verify-bins 4, --threads 1,
//          --gemm-threads 1 (intra-op tensor threads per worker).

#include <iostream>

#include "core/binning.h"
#include "core/fleet_executor.h"
#include "core/policy.h"
#include "core/workload.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/log.h"
#include "util/stopwatch.h"

using namespace reduce;

int main(int argc, char** argv) {
    try {
        const cli_args args(argc, argv);
        set_log_level(args.get_flag("verbose") ? log_level::info : log_level::warn);
        stopwatch timer;

        const std::size_t num_chips = static_cast<std::size_t>(args.get_int("chips", 30));
        const double constraint = args.get_double("constraint", 91.0) / 100.0;
        const std::size_t verify_bins =
            static_cast<std::size_t>(args.get_int("verify-bins", 4));
        const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1717));

        workload w = make_standard_workload();
        std::cerr << "[binning] clean accuracy " << w.clean_accuracy * 100.0 << "%\n";

        const std::size_t threads = static_cast<std::size_t>(args.get_int("threads", 1));
        const std::size_t gemm_threads =
            static_cast<std::size_t>(args.get_int("gemm-threads", 1));
        fleet_executor executor(*w.model, w.pretrained, w.train_data, w.test_data, w.array,
                                w.trainer_cfg, fleet_executor_config{.threads = threads, .gemm_threads = gemm_threads});
        resilience_config rc;
        rc.fault_rates = {0.0, 0.1, 0.2, 0.3};
        rc.repeats = 4;
        rc.max_epochs = 5.0;
        rc.seed = seed;
        const resilience_table table = executor.analyze(rc);

        fleet_config fc;
        fc.num_chips = num_chips;
        fc.rate_lo = 0.02;
        fc.rate_hi = 0.28;
        fc.seed = seed + 1;
        const std::vector<chip> fleet = make_fleet(w.array, fc);

        // Per-chip selections (Step 2 only; no training yet).
        selector_config sel;
        sel.accuracy_target = constraint;
        sel.stat = statistic::max;
        const retraining_selector selector(table, sel);
        std::vector<double> amounts;
        amounts.reserve(fleet.size());
        for (const chip& c : fleet) {
            const selection s = selector.select(*w.model, w.array, c.faults);
            amounts.push_back(s.epochs.value_or(table.max_epochs()));
        }

        csv_table sweep({"num_bins", "jobs_used", "total_epochs", "overhead_pct"});
        sweep.set_precision(3);
        for (const std::size_t k : {1u, 2u, 3u, 4u, 6u, 8u, 16u,
                                    static_cast<unsigned>(num_chips)}) {
            const binning_result r = bin_retraining_amounts(amounts, k);
            sweep.add_row({static_cast<long long>(k), static_cast<long long>(r.bins.size()),
                           r.binned_total, r.overhead() * 100.0});
        }
        std::cout << "# Binning sweep: per-chip total = "
                  << bin_retraining_amounts(amounts, num_chips).per_chip_total
                  << " epochs across " << num_chips << " chips\n";
        sweep.write(std::cout);

        // Verification: actually retrain with per-chip vs binned amounts —
        // binned_policy reuses the same DP partition through its plan() hook.
        const policy_outcome per_chip =
            executor.run(reduce_policy(table, sel, "per-chip"), fleet);
        const policy_outcome binned =
            executor.run(binned_policy(table, sel, verify_bins), fleet,
                         "binned-" + std::to_string(verify_bins));

        csv_table verify({"policy", "avg_epochs", "pct_meeting"});
        verify.set_precision(3);
        verify.add_row({per_chip.policy_name, per_chip.mean_epochs(),
                        per_chip.fraction_meeting() * 100.0});
        verify.add_row({binned.policy_name, binned.mean_epochs(),
                        binned.fraction_meeting() * 100.0});
        std::cout << "# Verification: binned allocations never under-train\n";
        verify.write(std::cout);
        std::cerr << "[binning] done in " << timer.seconds() << " s\n";
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
}
