// Shared CLI plumbing of the distributed-service binaries
// (reduce_coordinator / reduce_worker).
//
// The whole distributed design rests on SYMMETRIC CONSTRUCTION: the sweep
// config never crosses the wire — coordinator and workers each build it
// from their own command line, and the handshake fingerprint
// (resilience_fingerprint, which transitively names the workload, grid,
// fault model, seed, and schema version) proves they built the same thing.
// Keeping the flag parsing in one header makes "same flags → same job" a
// structural property instead of a convention: start every worker with the
// same --tiny/--rates/--repeats/--budget/--seed values as its coordinator.
#pragma once

#include <chrono>
#include <fstream>
#include <string>
#include <thread>

#include "core/fleet_executor.h"
#include "core/resilience.h"
#include "core/workload.h"
#include "dist/protocol.h"
#include "fault/chip.h"
#include "util/cli.h"
#include "util/error.h"

namespace reduce::dist_cli {

/// The workload both ends train on. --tiny selects the test-sized workload
/// (fast enough for CI smoke runs); default is the standard paper workload.
inline workload make_cli_workload(const cli_args& args) {
    if (args.get_flag("tiny")) { return make_standard_workload(make_test_workload_config()); }
    return make_standard_workload();
}

/// The fault-event timeline, parsed from --scenario (the scenario grammar
/// of fault/scenario.h, e.g. "strike@0.5:0.05;mode=recover;rollback=2").
/// Empty when the flag is absent. Shared by the distributed binaries and
/// the figure harnesses so one spelling drives every path.
inline scenario_config make_cli_scenario(const cli_args& args) {
    const std::string spec = args.get("scenario", "");
    if (spec.empty()) { return scenario_config{}; }
    return parse_scenario(spec);
}

/// The Step-1 sweep grid. Every value here feeds the fingerprint, so a
/// worker started with different flags is rejected at handshake — including
/// --scenario, which appends to the fingerprint only when non-empty (legacy
/// scenario-free jobs keep their historical fingerprints and journals).
inline resilience_config make_cli_sweep_config(const cli_args& args, const workload& w) {
    resilience_config cfg;
    cfg.fault_rates = args.get_double_list("rates", {0.0, 0.1, 0.2, 0.3});
    cfg.repeats = static_cast<std::size_t>(args.get_int("repeats", 3));
    cfg.max_epochs = args.get_double("budget", 4.0);
    cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 20230305));
    cfg.context = w.context;
    cfg.scenario = make_cli_scenario(args);
    return cfg;
}

/// The fleet (fleet mode only). Deterministic from the flags, so the
/// coordinator's ledger and any --local reference run agree chip for chip.
inline fleet_config make_cli_fleet_config(const cli_args& args) {
    fleet_config cfg;
    cfg.num_chips = static_cast<std::size_t>(args.get_int("chips", 6));
    cfg.distribution = rate_distribution_from_string(args.get("distribution", "uniform"));
    cfg.rate_lo = args.get_double("rate-lo", 0.02);
    cfg.rate_hi = args.get_double("rate-hi", 0.28);
    cfg.seed = static_cast<std::uint64_t>(args.get_int("fleet-seed", 77));
    return cfg;
}

/// Fleet outcomes as a stable JSON document — what --save writes in fleet
/// mode, byte-comparable between the serial and distributed paths.
inline json_value policy_outcome_to_json(const policy_outcome& outcome) {
    json_object doc;
    doc.set("policy", json_value(outcome.policy_name));
    doc.set("accuracy_constraint", json_value(outcome.accuracy_constraint));
    json_array chips;
    chips.reserve(outcome.chips.size());
    for (const chip_outcome& c : outcome.chips) {
        chips.push_back(dist::chip_outcome_to_json(c));
    }
    doc.set("chips", json_value(std::move(chips)));
    return json_value(std::move(doc));
}

/// One non-blocking look at --port/--port-file: the coordinator port as of
/// right now, or 0 when it is not knowable yet. The re-resolution primitive
/// behind worker reconnects — a restarted coordinator binds a fresh
/// ephemeral port and rewrites its --port-file, and the next read sees it.
inline int try_read_port(const cli_args& args) {
    const int port = static_cast<int>(args.get_int("port", 0));
    if (port != 0) { return port; }
    const std::string path = args.get("port-file", "");
    if (path.empty()) { return 0; }
    std::ifstream file(path);
    int value = 0;
    if (file >> value && value > 0) { return value; }
    return 0;
}

/// Resolves the coordinator port: --port when given, else poll --port-file
/// until the coordinator writes its (possibly ephemeral) bound port there.
inline int resolve_port(const cli_args& args) {
    REDUCE_CHECK(args.get_int("port", 0) != 0 || !args.get("port-file", "").empty(),
                 "need --port or --port-file to find the coordinator");
    for (int attempt = 0; attempt < 100; ++attempt) {
        const int value = try_read_port(args);
        if (value > 0) { return value; }
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    throw error("no port appeared in " + args.get("port-file", ""));
}

}  // namespace reduce::dist_cli
