#include "accel/systolic_array.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace reduce {

systolic_array::systolic_array(const array_config& config, fault_grid faults)
    : config_(config), faults_(std::move(faults)) {
    REDUCE_CHECK(faults_.rows() == config_.rows && faults_.cols() == config_.cols,
                 "fault grid " << faults_.rows() << "x" << faults_.cols()
                               << " does not match array " << config_.rows << "x"
                               << config_.cols);
}

systolic_array::systolic_array(const array_config& config)
    : config_(config), faults_(config.rows, config.cols) {}

tensor systolic_array::run_gemm(const tensor& activations, const tensor& weight,
                                const gemm_mapping& mapping, float w_max) const {
    REDUCE_CHECK(activations.dim() == 2, "run_gemm activations must be [M, fan_in]");
    REDUCE_CHECK(weight.dim() == 2, "run_gemm weight must be [fan_out, fan_in]");
    const std::size_t batch = activations.extent(0);
    const std::size_t fan_in = activations.extent(1);
    const std::size_t fan_out = weight.extent(0);
    REDUCE_CHECK(weight.extent(1) == fan_in,
                 "weight " << weight.describe() << " does not match activations "
                           << activations.describe());
    REDUCE_CHECK(mapping.fan_in() == fan_in && mapping.fan_out() == fan_out,
                 "mapping (" << mapping.fan_in() << "x" << mapping.fan_out()
                             << ") does not match GEMM (" << fan_in << "x" << fan_out << ")");
    REDUCE_CHECK(mapping.array_rows() == config_.rows && mapping.array_cols() == config_.cols,
                 "mapping array geometry does not match this array");

    if (w_max <= 0.0f) {
        w_max = 0.0f;
        for (const float w : weight.data()) { w_max = std::max(w_max, std::abs(w)); }
    }

    // The modulo structure means a weight's fault state only depends on
    // (i mod rows, o mod cols) — read the grid's row-major storage directly
    // instead of copying it into a per-call lookup table.
    const std::size_t rows = config_.rows;
    const std::size_t cols = config_.cols;
    const pe_fault* fault_of = faults_.states().data();
    const std::vector<std::size_t>& perm = mapping.column_permutation();

    tensor output({batch, fan_out});
    const float* x = activations.raw();
    const float* w = weight.raw();
    float* y = output.raw();
    for (std::size_t m = 0; m < batch; ++m) {
        const float* xrow = x + m * fan_in;
        float* yrow = y + m * fan_out;
        for (std::size_t o = 0; o < fan_out; ++o) {
            const std::size_t col = perm[o % cols];
            const float* wrow = w + o * fan_in;
            float acc = 0.0f;
            for (std::size_t i = 0; i < fan_in; ++i) {
                const pe_fault f = fault_of[(i % rows) * cols + col];
                acc = pe_mac(f, acc, wrow[i], xrow[i], w_max);
            }
            yrow[o] = acc;
        }
    }
    return output;
}

std::size_t systolic_array::apply_fap() { return faults_.repair_all(pe_fault::bypassed); }

double gemm_perf::microseconds(const array_config& config) const {
    REDUCE_CHECK(config.clock_ghz > 0.0, "clock must be positive");
    return static_cast<double>(cycles) / (config.clock_ghz * 1e3);
}

gemm_perf estimate_gemm_perf(const array_config& config, const gemm_mapping& mapping,
                             std::size_t batch, const fault_grid* faults) {
    REDUCE_CHECK(batch > 0, "perf estimate needs a positive batch");
    gemm_perf perf;
    const std::size_t rows = config.rows;
    const std::size_t cols = config.cols;
    const std::vector<std::size_t>& perm = mapping.column_permutation();

    for (std::size_t ti = 0; ti < mapping.row_tiles(); ++ti) {
        const std::size_t tile_rows = std::min(rows, mapping.fan_in() - ti * rows);
        for (std::size_t tj = 0; tj < mapping.col_tiles(); ++tj) {
            const std::size_t tile_cols = std::min(cols, mapping.fan_out() - tj * cols);
            // Weight fill (one row per cycle) + pipelined activation stream.
            perf.cycles += tile_rows;                            // load
            perf.cycles += batch + tile_rows + tile_cols - 2;    // stream + drain
            perf.weight_loads += tile_rows * tile_cols;

            std::size_t faulty_in_tile = 0;
            if (faults != nullptr) {
                for (std::size_t c = 0; c < tile_cols; ++c) {
                    const std::size_t phys_col = perm[c];
                    for (std::size_t r = 0; r < tile_rows; ++r) {
                        if (is_faulty(faults->at(r, phys_col))) { ++faulty_in_tile; }
                    }
                }
            }
            const std::uint64_t tile_macs =
                static_cast<std::uint64_t>(batch) * tile_rows * tile_cols;
            const std::uint64_t lost =
                static_cast<std::uint64_t>(batch) * faulty_in_tile;
            perf.useful_macs += tile_macs - lost;
            perf.lost_macs += lost;
        }
    }

    perf.energy_nj = (static_cast<double>(perf.useful_macs) * config.energy_per_mac_pj +
                      static_cast<double>(perf.weight_loads) * config.energy_per_weight_load_pj +
                      static_cast<double>(batch) * static_cast<double>(mapping.fan_in()) *
                          static_cast<double>(mapping.row_tiles()) *
                          config.energy_per_act_stream_pj) *
                     1e-3;
    const double capacity = static_cast<double>(perf.cycles) *
                            static_cast<double>(config.pe_count());
    perf.utilization = capacity > 0.0 ? static_cast<double>(perf.useful_macs) / capacity : 0.0;
    return perf;
}

gemm_perf accumulate_perf(const gemm_perf& a, const gemm_perf& b) {
    gemm_perf total;
    total.cycles = a.cycles + b.cycles;
    total.weight_loads = a.weight_loads + b.weight_loads;
    total.useful_macs = a.useful_macs + b.useful_macs;
    total.lost_macs = a.lost_macs + b.lost_macs;
    total.energy_nj = a.energy_nj + b.energy_nj;
    const double denom = static_cast<double>(total.cycles);
    total.utilization = denom > 0.0
                            ? (a.utilization * static_cast<double>(a.cycles) +
                               b.utilization * static_cast<double>(b.cycles)) / denom
                            : 0.0;
    return total;
}

}  // namespace reduce
