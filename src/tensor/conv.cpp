#include "tensor/conv.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <limits>

#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/workspace.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace reduce {

std::size_t conv2d_spec::out_h(std::size_t in_h) const {
    REDUCE_CHECK(in_h + 2 * padding >= kernel_h,
                 "conv2d kernel_h " << kernel_h << " larger than padded input " << in_h);
    REDUCE_CHECK(stride > 0, "conv2d stride must be positive");
    return (in_h + 2 * padding - kernel_h) / stride + 1;
}

std::size_t conv2d_spec::out_w(std::size_t in_w) const {
    REDUCE_CHECK(in_w + 2 * padding >= kernel_w,
                 "conv2d kernel_w " << kernel_w << " larger than padded input " << in_w);
    REDUCE_CHECK(stride > 0, "conv2d stride must be positive");
    return (in_w + 2 * padding - kernel_w) / stride + 1;
}

namespace {

// Lowering budget: cap on the workspace slabs one chunk holds at once
// (patch matrix + lowered output, plus the column gradient in backward).
// Only chunk GEOMETRY depends on it, so any budget yields the same forward
// numbers; the backward dW/db accumulation order follows the chunk split,
// which is itself a pure function of shapes and this budget.
std::atomic<std::size_t> lowering_budget_bytes{64u << 20};

/// Images per lowered chunk: as many as the budget allows, at least 1, at
/// most the batch. `slab_rows` is the total height of the workspace slabs
/// held simultaneously per chunk, in patch-matrix-row units — forward
/// leases columns + lowered output (patch + out_c rows of `plane` floats
/// per image); backward additionally holds the column gradient
/// (2*patch + out_c), so its chunks are smaller under the same budget.
std::size_t images_per_chunk(std::size_t slab_rows, std::size_t plane, std::size_t batch) {
    const std::size_t per_image = slab_rows * plane * sizeof(float);
    if (per_image == 0) { return std::max<std::size_t>(batch, 1); }
    const std::size_t fit = lowering_budget_bytes.load(std::memory_order_relaxed) / per_image;
    return std::clamp<std::size_t>(fit, 1, std::max<std::size_t>(batch, 1));
}

// Minimum element count before a lowering/scatter loop fans out over the
// intra-op pool (should_fan_out) — these are memory-bound copies, so the
// bar is lower than the GEMM threshold but still well above the fork/join
// cost. Shape-only, and results are bit-identical either way (the
// partitions below never split an accumulation chain across threads).
constexpr double k_conv_parallel_min_elems = 128.0 * 1024.0;

/// True when a data-movement loop over `work_elems` elements should use the
/// intra-op pool.
bool conv_fan_out(std::size_t work_elems) {
    return should_fan_out(static_cast<double>(work_elems), k_conv_parallel_min_elems);
}

/// Scatters a lowered chunk output [out_c, nb*plane] (row stride
/// `src_stride`) back to [image, out_c, plane] layout starting at image
/// `img0` of `out_ptr`, adding the optional bias — shared by the serial
/// forward and both grouped entry points so the layout/bias law lives once.
/// Output channels write disjoint destinations, so the parallel split is
/// trivially bit-identical.
///
/// The scatter IS the conv's tail pass (it already touches every output
/// element), so the fused activation lives here: with `fuse_relu` each
/// value is clamped during the copy, and `relu_keep` (a base pointer
/// parallel to `out_ptr`, NCHW layout) records !(z <= 0) of the pre-ReLU
/// value — relu_backward's exact predicate, NaN pre-activations keep
/// gradient. Writing the mask in OUTPUT layout (not lowered layout) is
/// deliberate: forward and backward chunk the batch differently, so only
/// the NCHW mask lines up with the dY tensor the backward masks.
void scatter_lowered_output(const float* src, std::size_t src_stride, std::size_t nb,
                            std::size_t plane, std::size_t out_c, const tensor& bias,
                            float* out_ptr, std::size_t img0, bool fuse_relu = false,
                            std::uint8_t* relu_keep = nullptr) {
    const bool has_bias = !bias.empty();
    const auto scatter_rows = [&](std::size_t oc0, std::size_t oc1) {
        for (std::size_t oc = oc0; oc < oc1; ++oc) {
            const float b = has_bias ? bias[oc] : 0.0f;
            const float* srow = src + oc * src_stride;
            for (std::size_t n = 0; n < nb; ++n) {
                const std::size_t dst_off = ((img0 + n) * out_c + oc) * plane;
                float* dst = out_ptr + dst_off;
                const float* col = srow + n * plane;
                if (!fuse_relu) {
                    for (std::size_t i = 0; i < plane; ++i) { dst[i] = col[i] + b; }
                } else if (relu_keep == nullptr) {
                    for (std::size_t i = 0; i < plane; ++i) {
                        const float z = col[i] + b;
                        dst[i] = z > 0.0f ? z : 0.0f;
                    }
                } else {
                    std::uint8_t* keep = relu_keep + dst_off;
                    for (std::size_t i = 0; i < plane; ++i) {
                        const float z = col[i] + b;
                        keep[i] = !(z <= 0.0f) ? 1 : 0;
                        dst[i] = z > 0.0f ? z : 0.0f;
                    }
                }
            }
        }
    };
    if (conv_fan_out(out_c * nb * plane) && out_c > 1) {
        parallel_for(out_c, scatter_rows);
    } else {
        scatter_rows(0, out_c);
    }
}

/// Lowers ONE patch row (absolute index `patch_row`) of the whole batch
/// into `drow` (length batch*oh*ow) — the unit both im2col entry points
/// parallelize over, since patch rows write disjoint destination rows.
void lower_patch_row(const float* input, std::size_t batch, std::size_t in_h,
                     std::size_t in_w, const conv2d_spec& spec, std::size_t patch_row,
                     float* drow_base) {
    const std::size_t oh = spec.out_h(in_h);
    const std::size_t ow = spec.out_w(in_w);
    const std::size_t out_cols = oh * ow;
    const std::size_t image_elems = spec.in_channels * in_h * in_w;
    const std::size_t taps = spec.kernel_h * spec.kernel_w;
    const std::size_t c = patch_row / taps;
    const std::size_t kh = (patch_row % taps) / spec.kernel_w;
    const std::size_t kw = patch_row % spec.kernel_w;
    for (std::size_t n = 0; n < batch; ++n) {
        const float* src = input + n * image_elems;
        float* drow = drow_base + n * out_cols;
        for (std::size_t oy = 0; oy < oh; ++oy) {
            // Signed arithmetic for the padded coordinate.
            const std::ptrdiff_t iy = static_cast<std::ptrdiff_t>(oy * spec.stride + kh) -
                                      static_cast<std::ptrdiff_t>(spec.padding);
            if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(in_h)) {
                std::memset(drow + oy * ow, 0, ow * sizeof(float));
                continue;
            }
            const float* srow = src + (c * in_h + static_cast<std::size_t>(iy)) * in_w;
            for (std::size_t ox = 0; ox < ow; ++ox) {
                const std::ptrdiff_t ix = static_cast<std::ptrdiff_t>(ox * spec.stride + kw) -
                                          static_cast<std::ptrdiff_t>(spec.padding);
                drow[oy * ow + ox] = (ix >= 0 && ix < static_cast<std::ptrdiff_t>(in_w))
                                         ? srow[static_cast<std::size_t>(ix)]
                                         : 0.0f;
            }
        }
    }
}

}  // namespace

std::size_t set_conv_lowering_budget_bytes(std::size_t bytes) {
    REDUCE_CHECK(bytes > 0, "conv lowering budget must be positive");
    return lowering_budget_bytes.exchange(bytes, std::memory_order_relaxed);
}

std::size_t conv_lowering_budget_bytes() {
    return lowering_budget_bytes.load(std::memory_order_relaxed);
}

void im2col_batch(const float* input, std::size_t batch, std::size_t in_h, std::size_t in_w,
                  const conv2d_spec& spec, float* dst) {
    const std::size_t total_cols = batch * spec.out_h(in_h) * spec.out_w(in_w);
    const std::size_t patch = spec.patch_size();
    const auto lower_rows = [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
            lower_patch_row(input, batch, in_h, in_w, spec, r, dst + r * total_cols);
        }
    };
    // Patch rows write disjoint destination rows and read the input
    // immutably — any partition is bit-identical to the serial loop.
    if (conv_fan_out(patch * total_cols) && patch > 1) {
        parallel_for(patch, lower_rows);
    } else {
        lower_rows(0, patch);
    }
}

void col2im_batch(const float* columns, std::size_t batch, std::size_t in_h, std::size_t in_w,
                  const conv2d_spec& spec, float* dst) {
    const std::size_t oh = spec.out_h(in_h);
    const std::size_t ow = spec.out_w(in_w);
    const std::size_t out_cols = oh * ow;
    const std::size_t total_cols = batch * out_cols;
    const std::size_t image_elems = spec.in_channels * in_h * in_w;
    // Patch rows of different kernel taps accumulate onto OVERLAPPING input
    // pixels, so the parallel split is by IMAGE: every destination pixel's
    // accumulation chain stays on one thread in ascending patch-row order —
    // the exact per-pixel chain of the serial loop (which interleaves
    // images but visits each pixel's taps in the same order).
    const auto scatter_images = [&](std::size_t n0, std::size_t n1) {
        std::size_t patch_row = 0;
        for (std::size_t c = 0; c < spec.in_channels; ++c) {
            for (std::size_t kh = 0; kh < spec.kernel_h; ++kh) {
                for (std::size_t kw = 0; kw < spec.kernel_w; ++kw, ++patch_row) {
                    const float* prow = columns + patch_row * total_cols;
                    for (std::size_t n = n0; n < n1; ++n) {
                        float* img = dst + n * image_elems;
                        const float* srow = prow + n * out_cols;
                        for (std::size_t oy = 0; oy < oh; ++oy) {
                            const std::ptrdiff_t iy =
                                static_cast<std::ptrdiff_t>(oy * spec.stride + kh) -
                                static_cast<std::ptrdiff_t>(spec.padding);
                            if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(in_h)) {
                                continue;
                            }
                            float* irow =
                                img + (c * in_h + static_cast<std::size_t>(iy)) * in_w;
                            for (std::size_t ox = 0; ox < ow; ++ox) {
                                const std::ptrdiff_t ix =
                                    static_cast<std::ptrdiff_t>(ox * spec.stride + kw) -
                                    static_cast<std::ptrdiff_t>(spec.padding);
                                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(in_w)) {
                                    continue;
                                }
                                irow[static_cast<std::size_t>(ix)] += srow[oy * ow + ox];
                            }
                        }
                    }
                }
            }
        }
    };
    if (conv_fan_out(spec.patch_size() * total_cols) && batch > 1) {
        parallel_for(batch, scatter_images);
    } else {
        scatter_images(0, batch);
    }
}

tensor im2col(const tensor& image, const conv2d_spec& spec) {
    REDUCE_CHECK(image.dim() == 3, "im2col expects [C,H,W], got " << image.describe());
    REDUCE_CHECK(image.extent(0) == spec.in_channels,
                 "im2col channel mismatch: image has " << image.extent(0)
                                                       << ", spec expects "
                                                       << spec.in_channels);
    const std::size_t in_h = image.extent(1);
    const std::size_t in_w = image.extent(2);
    tensor columns({spec.patch_size(), spec.out_h(in_h) * spec.out_w(in_w)});
    im2col_batch(image.raw(), 1, in_h, in_w, spec, columns.raw());
    return columns;
}

tensor col2im(const tensor& columns, const conv2d_spec& spec, std::size_t in_h,
              std::size_t in_w) {
    REDUCE_CHECK(columns.dim() == 2, "col2im expects rank-2 input, got " << columns.describe());
    const std::size_t oh = spec.out_h(in_h);
    const std::size_t ow = spec.out_w(in_w);
    REDUCE_CHECK(columns.extent(0) == spec.patch_size() && columns.extent(1) == oh * ow,
                 "col2im shape mismatch: " << columns.describe());
    tensor image({spec.in_channels, in_h, in_w});
    col2im_batch(columns.raw(), 1, in_h, in_w, spec, image.raw());
    return image;
}

namespace {

void check_conv_inputs(const tensor& input, const tensor& weight, const conv2d_spec& spec) {
    REDUCE_CHECK(input.dim() == 4, "conv2d expects input [N,C,H,W], got " << input.describe());
    REDUCE_CHECK(weight.dim() == 4,
                 "conv2d expects weight [O,C,kh,kw], got " << weight.describe());
    REDUCE_CHECK(input.extent(1) == spec.in_channels,
                 "conv2d input channels " << input.extent(1) << " != spec " << spec.in_channels);
    REDUCE_CHECK(weight.extent(0) == spec.out_channels && weight.extent(1) == spec.in_channels &&
                     weight.extent(2) == spec.kernel_h && weight.extent(3) == spec.kernel_w,
                 "conv2d weight " << weight.describe() << " does not match spec");
}

}  // namespace

tensor conv2d_forward(const tensor& input, const tensor& weight, const tensor& bias,
                      const conv2d_spec& spec) {
    return conv2d_forward(input, weight, bias, spec, nullptr);
}

tensor conv2d_forward(const tensor& input, const tensor& weight, const tensor& bias,
                      const conv2d_spec& spec, const conv_fusion* fusion) {
    check_conv_inputs(input, weight, spec);
    REDUCE_CHECK(fusion == nullptr || fusion->relu_keep == nullptr || fusion->relu,
                 "conv2d fusion keep-mask requires relu");
    const std::size_t batch = input.extent(0);
    const std::size_t in_h = input.extent(2);
    const std::size_t in_w = input.extent(3);
    const std::size_t oh = spec.out_h(in_h);
    const std::size_t ow = spec.out_w(in_w);
    const bool has_bias = !bias.empty();
    if (has_bias) {
        REDUCE_CHECK(bias.dim() == 1 && bias.extent(0) == spec.out_channels,
                     "conv2d bias " << bias.describe() << " does not match out_channels");
    }

    const std::size_t patch = spec.patch_size();
    const std::size_t plane = oh * ow;
    const std::size_t image_elems = spec.in_channels * in_h * in_w;
    tensor output({batch, spec.out_channels, oh, ow});
    float* out_ptr = output.raw();
    // The weight tensor [O, C, kh, kw] IS the lowered [O, patch] matrix —
    // row-major contiguity makes the reshape free (the seed copied it).
    const float* weight2d = weight.raw();

    // With a fusion request the bias moves into the GEMM epilogue (row bias
    // per output channel, applied at the tile store) and the scatter applies
    // the activation; without one the bias rides the scatter as before.
    // Either placement adds bias to the completed accumulation chain with
    // the same single float add — bit-identical.
    const bool fused = fusion != nullptr;
    gemm_epilogue epi;
    const gemm_epilogue* epi_ptr = nullptr;
    if (fused && has_bias) {
        epi.row_bias = bias.raw();
        epi_ptr = &epi;
    }
    static const tensor no_bias;

    workspace& ws = workspace::local();
    const std::size_t chunk = images_per_chunk(patch + spec.out_channels, plane, batch);
    for (std::size_t n0 = 0; n0 < batch; n0 += chunk) {
        const std::size_t nb = std::min(chunk, batch - n0);
        const std::size_t cols = nb * plane;
        workspace::buffer colbuf = ws.acquire(patch * cols);
        im2col_batch(input.raw() + n0 * image_elems, nb, in_h, in_w, spec, colbuf.data());
        workspace::buffer outbuf = ws.acquire(spec.out_channels * cols);
        gemm_nn(spec.out_channels, cols, patch, weight2d, patch, colbuf.data(), cols,
                outbuf.data(), cols, /*accumulate=*/false, ws, epi_ptr);
        scatter_lowered_output(outbuf.data(), cols, nb, plane, spec.out_channels,
                               fused ? no_bias : bias, out_ptr, n0, fused && fusion->relu,
                               fused ? fusion->relu_keep : nullptr);
    }
    return output;
}

std::vector<std::size_t> conv_active_patch_rows(const conv2d_spec& spec, std::size_t in_h,
                                                std::size_t in_w) {
    const std::size_t oh = spec.out_h(in_h);
    const std::size_t ow = spec.out_w(in_w);
    // A tap (ky, kx) is live when SOME output position puts it in bounds in
    // both axes; otherwise its whole patch row lowers to exact zeros.
    std::vector<bool> ky_live(spec.kernel_h, false);
    std::vector<bool> kx_live(spec.kernel_w, false);
    for (std::size_t ky = 0; ky < spec.kernel_h; ++ky) {
        for (std::size_t oy = 0; oy < oh; ++oy) {
            const std::ptrdiff_t iy = static_cast<std::ptrdiff_t>(oy * spec.stride + ky) -
                                      static_cast<std::ptrdiff_t>(spec.padding);
            if (iy >= 0 && iy < static_cast<std::ptrdiff_t>(in_h)) {
                ky_live[ky] = true;
                break;
            }
        }
    }
    for (std::size_t kx = 0; kx < spec.kernel_w; ++kx) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
            const std::ptrdiff_t ix = static_cast<std::ptrdiff_t>(ox * spec.stride + kx) -
                                      static_cast<std::ptrdiff_t>(spec.padding);
            if (ix >= 0 && ix < static_cast<std::ptrdiff_t>(in_w)) {
                kx_live[kx] = true;
                break;
            }
        }
    }
    std::vector<std::size_t> rows;
    rows.reserve(spec.patch_size());
    for (std::size_t c = 0; c < spec.in_channels; ++c) {
        for (std::size_t ky = 0; ky < spec.kernel_h; ++ky) {
            for (std::size_t kx = 0; kx < spec.kernel_w; ++kx) {
                if (ky_live[ky] && kx_live[kx]) {
                    rows.push_back((c * spec.kernel_h + ky) * spec.kernel_w + kx);
                }
            }
        }
    }
    return rows;
}

void im2col_batch_rows(const float* input, std::size_t batch, std::size_t in_h,
                       std::size_t in_w, const conv2d_spec& spec, const std::size_t* rows,
                       std::size_t nrows, float* dst) {
    const std::size_t total_cols = batch * spec.out_h(in_h) * spec.out_w(in_w);
    const auto lower_rows = [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
            lower_patch_row(input, batch, in_h, in_w, spec, rows[r], dst + r * total_cols);
        }
    };
    if (conv_fan_out(nrows * total_cols) && nrows > 1) {
        parallel_for(nrows, lower_rows);
    } else {
        lower_rows(0, nrows);
    }
}

void col2im_batch_rows(const float* columns, std::size_t batch, std::size_t in_h,
                       std::size_t in_w, const conv2d_spec& spec, const std::size_t* rows,
                       std::size_t nrows, float* dst) {
    const std::size_t oh = spec.out_h(in_h);
    const std::size_t ow = spec.out_w(in_w);
    const std::size_t out_cols = oh * ow;
    const std::size_t total_cols = batch * out_cols;
    const std::size_t image_elems = spec.in_channels * in_h * in_w;
    const std::size_t taps = spec.kernel_h * spec.kernel_w;
    // Same split-by-image law as col2im_batch: every destination pixel's
    // += chain stays on one thread, visiting the listed patch rows in
    // ascending order — the serial full adjoint's per-pixel order with the
    // zero-contribution (all-padding) rows absent.
    const auto scatter_images = [&](std::size_t n0, std::size_t n1) {
        for (std::size_t r = 0; r < nrows; ++r) {
            const std::size_t patch_row = rows[r];
            const std::size_t c = patch_row / taps;
            const std::size_t kh = (patch_row % taps) / spec.kernel_w;
            const std::size_t kw = patch_row % spec.kernel_w;
            const float* prow = columns + r * total_cols;
            for (std::size_t n = n0; n < n1; ++n) {
                float* img = dst + n * image_elems;
                const float* srow = prow + n * out_cols;
                for (std::size_t oy = 0; oy < oh; ++oy) {
                    const std::ptrdiff_t iy =
                        static_cast<std::ptrdiff_t>(oy * spec.stride + kh) -
                        static_cast<std::ptrdiff_t>(spec.padding);
                    if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(in_h)) { continue; }
                    float* irow = img + (c * in_h + static_cast<std::size_t>(iy)) * in_w;
                    for (std::size_t ox = 0; ox < ow; ++ox) {
                        const std::ptrdiff_t ix =
                            static_cast<std::ptrdiff_t>(ox * spec.stride + kw) -
                            static_cast<std::ptrdiff_t>(spec.padding);
                        if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(in_w)) { continue; }
                        irow[static_cast<std::size_t>(ix)] += srow[oy * ow + ox];
                    }
                }
            }
        }
    };
    if (conv_fan_out(nrows * total_cols) && batch > 1) {
        parallel_for(batch, scatter_images);
    } else {
        scatter_images(0, batch);
    }
}

namespace {

/// Shared validation of the grouped forward entry points; returns the raw
/// weight pointers.
std::vector<const float*> check_group_weights(const std::vector<const tensor*>& weights,
                                              const conv2d_spec& spec) {
    REDUCE_CHECK(!weights.empty(), "grouped conv2d needs at least one weight variant");
    std::vector<const float*> ptrs(weights.size());
    for (std::size_t g = 0; g < weights.size(); ++g) {
        const tensor& w = *weights[g];
        REDUCE_CHECK(w.dim() == 4 && w.extent(0) == spec.out_channels &&
                         w.extent(1) == spec.in_channels && w.extent(2) == spec.kernel_h &&
                         w.extent(3) == spec.kernel_w,
                     "grouped conv2d weight " << g << " is " << w.describe()
                                              << " and does not match the spec");
        ptrs[g] = w.raw();
    }
    return ptrs;
}

void check_group_bias(const tensor& bias, const conv2d_spec& spec) {
    if (!bias.empty()) {
        REDUCE_CHECK(bias.dim() == 1 && bias.extent(0) == spec.out_channels,
                     "grouped conv2d bias " << bias.describe()
                                            << " does not match out_channels");
    }
}

/// Per-call geometry the two grouped forward entry points share: output
/// extents, the active patch-row subset, and the k-subset descriptor the
/// grouped GEMM driver consumes (null when no row is structurally zero).
struct group_conv_geometry {
    // Self-referential (subset_ptr/subset.rows point into own members):
    // neither copyable nor movable, by design.
    group_conv_geometry(const group_conv_geometry&) = delete;
    group_conv_geometry& operator=(const group_conv_geometry&) = delete;

    std::size_t in_h = 0;
    std::size_t in_w = 0;
    std::size_t oh = 0;
    std::size_t ow = 0;
    std::size_t plane = 0;
    std::size_t patch = 0;
    std::size_t image_elems = 0;
    std::vector<std::size_t> rows;
    gemm_k_subset subset;
    const gemm_k_subset* subset_ptr = nullptr;  ///< null when rows == patch

    explicit group_conv_geometry(const tensor& input, const conv2d_spec& spec) {
        REDUCE_CHECK(input.dim() == 4 && input.extent(1) == spec.in_channels,
                     "grouped conv2d expects input [N,C,H,W] matching the spec, got "
                         << input.describe());
        in_h = input.extent(2);
        in_w = input.extent(3);
        oh = spec.out_h(in_h);
        ow = spec.out_w(in_w);
        plane = oh * ow;
        patch = spec.patch_size();
        image_elems = spec.in_channels * in_h * in_w;
        rows = conv_active_patch_rows(spec, in_h, in_w);
        subset.rows = rows.data();
        subset.count = rows.size();
        subset.original_k = patch;
        if (rows.size() != patch) { subset_ptr = &subset; }
    }

    /// Lowers a chunk of `nb` images starting at `src` into `dst`
    /// ([rows.size(), nb*plane]), via the full or row-subset path.
    void lower(const float* src, std::size_t nb, const conv2d_spec& spec, float* dst) const {
        if (subset_ptr == nullptr) {
            im2col_batch(src, nb, in_h, in_w, spec, dst);
        } else {
            im2col_batch_rows(src, nb, in_h, in_w, spec, rows.data(), rows.size(), dst);
        }
    }

    /// Scatters a lowered [out_c, nb*plane] block (row stride `src_stride`)
    /// back to [image, out_c, plane] layout starting at image `img0`,
    /// adding the bias — the exact loop conv2d_forward runs. `fuse_relu`
    /// applies the activation during the copy (the fused grouped tail).
    void scatter(const float* src, std::size_t src_stride, std::size_t nb,
                 const conv2d_spec& spec, const tensor& bias, float* out_ptr,
                 std::size_t img0, bool fuse_relu = false) const {
        scatter_lowered_output(src, src_stride, nb, plane, spec.out_channels, bias, out_ptr,
                               img0, fuse_relu);
    }
};

/// Builds the grouped drivers' GEMM epilogue: with fusion requested the
/// shared bias moves into the tile store (row bias per output channel), the
/// ReLU stays in the scatter. Returns nullptr when nothing is fused there.
const gemm_epilogue* group_conv_epilogue(gemm_epilogue& epi, const tensor& bias,
                                         bool fuse_relu) {
    if (!fuse_relu || bias.empty()) { return nullptr; }
    epi.row_bias = bias.raw();
    return &epi;
}

}  // namespace

tensor conv2d_forward_fanout(const tensor& input, const std::vector<const tensor*>& weights,
                             const tensor& bias, const conv2d_spec& spec, bool fuse_relu) {
    const std::vector<const float*> a_list = check_group_weights(weights, spec);
    check_group_bias(bias, spec);
    const group_conv_geometry geo(input, spec);
    const std::size_t groups = weights.size();
    const std::size_t batch = input.extent(0);
    gemm_epilogue epi;
    const gemm_epilogue* epi_ptr = group_conv_epilogue(epi, bias, fuse_relu);
    static const tensor no_bias;
    const tensor& scatter_bias = fuse_relu ? no_bias : bias;

    tensor output({groups * batch, spec.out_channels, geo.oh, geo.ow});
    float* out_ptr = output.raw();

    workspace& ws = workspace::local();
    const std::size_t chunk =
        images_per_chunk(geo.rows.size() + groups * spec.out_channels, geo.plane, batch);
    std::vector<float*> c_list(groups);
    for (std::size_t n0 = 0; n0 < batch; n0 += chunk) {
        const std::size_t nb = std::min(chunk, batch - n0);
        const std::size_t cols = nb * geo.plane;
        workspace::buffer colbuf = ws.acquire(geo.rows.size() * cols);
        geo.lower(input.raw() + n0 * geo.image_elems, nb, spec, colbuf.data());
        // One wide lowered output [O, groups*cols]: variant g's block starts
        // at column g*cols, so the scatter below reads it like the serial
        // path reads its per-variant buffer.
        workspace::buffer outbuf = ws.acquire(spec.out_channels * groups * cols);
        for (std::size_t g = 0; g < groups; ++g) { c_list[g] = outbuf.data() + g * cols; }
        gemm_nn_multi(spec.out_channels, cols, geo.patch, a_list.data(), groups, geo.patch,
                      colbuf.data(), cols, c_list.data(), groups * cols,
                      /*accumulate=*/false, ws, geo.subset_ptr, epi_ptr);
        for (std::size_t g = 0; g < groups; ++g) {
            geo.scatter(outbuf.data() + g * cols, groups * cols, nb, spec, scatter_bias,
                        out_ptr, g * batch + n0, fuse_relu);
        }
    }
    return output;
}

tensor conv2d_forward_grouped(const tensor& input, std::size_t groups,
                              const std::vector<const tensor*>& weights, const tensor& bias,
                              const conv2d_spec& spec, bool fuse_relu) {
    const std::vector<const float*> a_list = check_group_weights(weights, spec);
    check_group_bias(bias, spec);
    const group_conv_geometry geo(input, spec);
    gemm_epilogue epi;
    const gemm_epilogue* epi_ptr = group_conv_epilogue(epi, bias, fuse_relu);
    static const tensor no_bias;
    const tensor& scatter_bias = fuse_relu ? no_bias : bias;
    REDUCE_CHECK(groups > 0 && weights.size() == groups,
                 "conv2d_forward_grouped got " << weights.size() << " weights for " << groups
                                               << " groups");
    const std::size_t total = input.extent(0);
    REDUCE_CHECK(total % groups == 0, "conv2d_forward_grouped stacked batch "
                                          << total << " not divisible by " << groups
                                          << " groups");
    const std::size_t per_group = total / groups;

    tensor output({total, spec.out_channels, geo.oh, geo.ow});
    float* out_ptr = output.raw();

    workspace& ws = workspace::local();
    const std::size_t chunk =
        images_per_chunk(geo.rows.size() + spec.out_channels, geo.plane, total);
    for (std::size_t n0 = 0; n0 < total; n0 += chunk) {
        const std::size_t nb = std::min(chunk, total - n0);
        const std::size_t cols = nb * geo.plane;
        workspace::buffer colbuf = ws.acquire(geo.rows.size() * cols);
        geo.lower(input.raw() + n0 * geo.image_elems, nb, spec, colbuf.data());
        workspace::buffer outbuf = ws.acquire(spec.out_channels * cols);
        // A chunk may span variant boundaries; run each variant's weight
        // over exactly its own image columns.
        std::size_t s0 = n0;
        while (s0 < n0 + nb) {
            const std::size_t g = s0 / per_group;
            const std::size_t s1 = std::min(n0 + nb, (g + 1) * per_group);
            const float* a = a_list[g];
            float* c = outbuf.data() + (s0 - n0) * geo.plane;
            const float* b = colbuf.data() + (s0 - n0) * geo.plane;
            gemm_nn_multi(spec.out_channels, (s1 - s0) * geo.plane, geo.patch, &a, 1,
                          geo.patch, b, cols, &c, cols, /*accumulate=*/false, ws,
                          geo.subset_ptr, epi_ptr);
            s0 = s1;
        }
        geo.scatter(outbuf.data(), cols, nb, spec, scatter_bias, out_ptr, n0, fuse_relu);
    }
    return output;
}

tensor conv2d_forward_grouped_vb(const tensor& input, std::size_t groups,
                                 const std::vector<const tensor*>& weights,
                                 const std::vector<const tensor*>& biases,
                                 const conv2d_spec& spec, std::uint8_t* relu_keep) {
    const std::vector<const float*> a_list = check_group_weights(weights, spec);
    REDUCE_CHECK(biases.size() == weights.size(),
                 "conv2d_forward_grouped_vb got " << biases.size() << " biases for "
                                                  << weights.size() << " weights");
    for (const tensor* b : biases) {
        REDUCE_CHECK(b != nullptr && b->dim() == 1 && b->extent(0) == spec.out_channels,
                     "conv2d_forward_grouped_vb bias does not match out_channels");
    }
    const group_conv_geometry geo(input, spec);
    REDUCE_CHECK(groups > 0 && weights.size() == groups,
                 "conv2d_forward_grouped_vb got " << weights.size() << " weights for "
                                                  << groups << " groups");
    const std::size_t total = input.extent(0);
    REDUCE_CHECK(total % groups == 0, "conv2d_forward_grouped_vb stacked batch "
                                          << total << " not divisible by " << groups
                                          << " groups");
    const std::size_t per_group = total / groups;
    static const tensor no_bias;

    tensor output({total, spec.out_channels, geo.oh, geo.ow});
    float* out_ptr = output.raw();

    workspace& ws = workspace::local();
    const std::size_t chunk =
        images_per_chunk(geo.rows.size() + spec.out_channels, geo.plane, total);
    for (std::size_t n0 = 0; n0 < total; n0 += chunk) {
        const std::size_t nb = std::min(chunk, total - n0);
        const std::size_t cols = nb * geo.plane;
        workspace::buffer colbuf = ws.acquire(geo.rows.size() * cols);
        geo.lower(input.raw() + n0 * geo.image_elems, nb, spec, colbuf.data());
        workspace::buffer outbuf = ws.acquire(spec.out_channels * cols);
        // A chunk may span variant boundaries; each variant's span gets its
        // own epilogue so the per-variant bias folds into the tile store —
        // the exact placement the serial fused layer uses, bit-identical to
        // the unfused scatter-side bias.
        std::size_t s0 = n0;
        while (s0 < n0 + nb) {
            const std::size_t g = s0 / per_group;
            const std::size_t s1 = std::min(n0 + nb, (g + 1) * per_group);
            const float* a = a_list[g];
            float* c = outbuf.data() + (s0 - n0) * geo.plane;
            const float* b = colbuf.data() + (s0 - n0) * geo.plane;
            gemm_epilogue epi;
            epi.row_bias = biases[g]->raw();
            gemm_nn_multi(spec.out_channels, (s1 - s0) * geo.plane, geo.patch, &a, 1,
                          geo.patch, b, cols, &c, cols, /*accumulate=*/false, ws,
                          geo.subset_ptr, &epi);
            s0 = s1;
        }
        // Bias already applied; the scatter handles the (optional) fused
        // ReLU and the stacked-NCHW keep-mask — relu_keep is a base pointer
        // parallel to out_ptr, so variant blocks land in their own regions.
        scatter_lowered_output(outbuf.data(), cols, nb, geo.plane, spec.out_channels,
                               no_bias, out_ptr, n0, relu_keep != nullptr, relu_keep);
    }
    return output;
}

namespace {

/// Backward over one contiguous image block (the serial batch, or one
/// variant's block of a stacked batch). With `active == nullptr` this IS
/// the serial conv2d_backward_acc body. With an active-row subset
/// (n_active < patch) the structurally-zero padding rows are skipped:
///
///   * dX: the column gradient is computed only for active rows (compact W
///     columns via gemm_tn with unchanged k = out_c chains) and scattered
///     through col2im_batch_rows — byte-identical unconditionally, because
///     the serial col2im skips every tap of an all-padding row anyway;
///   * dW: active columns accumulate into a zeroed compact buffer with the
///     serial per-chunk acc=true chain, then scatter back by ASSIGNMENT.
///     Requires `gw` zeroed on entry and finite dY: the skipped columns'
///     serial value is a sum of exact-zero products, which is +0 — the
///     value zero_grad left there (the accumulator chain starting at +0 can
///     never produce -0 under round-to-nearest);
///   * db and chunking are untouched — the chunk split follows the SERIAL
///     formula (2*patch + out_c) so the dW/db accumulation order matches
///     the layer path chunk for chunk.
void conv2d_backward_block(const float* input, std::size_t batch, std::size_t in_h,
                           std::size_t in_w, const float* weight2d, const float* grad_out,
                           const conv2d_spec& spec, float* gin, float* gw, float* gb,
                           const std::size_t* active, std::size_t n_active, workspace& ws) {
    const std::size_t patch = spec.patch_size();
    const std::size_t plane = spec.out_h(in_h) * spec.out_w(in_w);
    const std::size_t image_elems = spec.in_channels * in_h * in_w;
    const std::size_t out_c = spec.out_channels;
    const bool skip = active != nullptr && n_active < patch;
    const std::size_t krows = skip ? n_active : patch;

    workspace::buffer wcompact;
    workspace::buffer dwcompact;
    if (skip) {
        wcompact = ws.acquire(out_c * n_active);
        dwcompact = ws.acquire_zeroed(out_c * n_active);
        for (std::size_t oc = 0; oc < out_c; ++oc) {
            for (std::size_t j = 0; j < n_active; ++j) {
                wcompact.data()[oc * n_active + j] = weight2d[oc * patch + active[j]];
            }
        }
    }

    // Three slabs live at once here (columns, lowered dY, column gradient).
    const std::size_t chunk = images_per_chunk(2 * patch + out_c, plane, batch);
    for (std::size_t n0 = 0; n0 < batch; n0 += chunk) {
        const std::size_t nb = std::min(chunk, batch - n0);
        const std::size_t cols = nb * plane;
        workspace::buffer colbuf = ws.acquire(krows * cols);
        if (skip) {
            im2col_batch_rows(input + n0 * image_elems, nb, in_h, in_w, spec, active,
                              n_active, colbuf.data());
        } else {
            im2col_batch(input + n0 * image_elems, nb, in_h, in_w, spec, colbuf.data());
        }

        // Gather dY from [N, O, plane] into the lowered [O, nb*plane]
        // layout. Channels write disjoint rows — parallel-safe.
        workspace::buffer gobuf = ws.acquire(out_c * cols);
        const auto gather_rows = [&](std::size_t oc0, std::size_t oc1) {
            for (std::size_t oc = oc0; oc < oc1; ++oc) {
                float* drow = gobuf.data() + oc * cols;
                for (std::size_t n = 0; n < nb; ++n) {
                    const float* src = grad_out + ((n0 + n) * out_c + oc) * plane;
                    std::memcpy(drow + n * plane, src, plane * sizeof(float));
                }
            }
        };
        if (conv_fan_out(out_c * cols) && out_c > 1) {
            parallel_for(out_c, gather_rows);
        } else {
            gather_rows(0, out_c);
        }

        // dW += dY · colsᵀ — one GEMM for the whole chunk, straight into
        // the parameter gradient (or the compact accumulator when skipping;
        // the k = cols chain per output element is identical either way).
        if (skip) {
            gemm_nt(out_c, n_active, cols, gobuf.data(), cols, colbuf.data(), cols,
                    dwcompact.data(), n_active, /*accumulate=*/true, ws);
        } else {
            gemm_nt(out_c, patch, cols, gobuf.data(), cols, colbuf.data(), cols, gw, patch,
                    /*accumulate=*/true, ws);
        }

        // db += row sums of dY. Each channel's sum is an independent serial
        // chain, so splitting channels across threads changes no bit.
        const auto bias_rows = [&](std::size_t oc0, std::size_t oc1) {
            for (std::size_t oc = oc0; oc < oc1; ++oc) {
                const float* row = gobuf.data() + oc * cols;
                float acc = 0.0f;
                for (std::size_t i = 0; i < cols; ++i) { acc += row[i]; }
                gb[oc] += acc;
            }
        };
        if (conv_fan_out(out_c * cols) && out_c > 1) {
            parallel_for(out_c, bias_rows);
        } else {
            bias_rows(0, out_c);
        }

        // dX += col2im(Wᵀ · dY); the column gradient reuses the im2col slab
        // shape, and col2im accumulates in place.
        workspace::buffer gradcols = ws.acquire(krows * cols);
        if (skip) {
            gemm_tn(n_active, cols, out_c, wcompact.data(), n_active, gobuf.data(), cols,
                    gradcols.data(), cols, /*accumulate=*/false, ws);
            col2im_batch_rows(gradcols.data(), nb, in_h, in_w, spec, active, n_active,
                              gin + n0 * image_elems);
        } else {
            gemm_tn(patch, cols, out_c, weight2d, patch, gobuf.data(), cols, gradcols.data(),
                    cols, /*accumulate=*/false, ws);
            col2im_batch(gradcols.data(), nb, in_h, in_w, spec, gin + n0 * image_elems);
        }
    }

    if (skip) {
        for (std::size_t oc = 0; oc < out_c; ++oc) {
            for (std::size_t j = 0; j < n_active; ++j) {
                gw[oc * patch + active[j]] = dwcompact.data()[oc * n_active + j];
            }
        }
    }
}

void check_conv_backward_shapes(const tensor& input, const tensor& weight,
                                const tensor& grad_output, const conv2d_spec& spec,
                                const tensor& grad_input) {
    check_conv_inputs(input, weight, spec);
    const std::size_t batch = input.extent(0);
    const std::size_t oh = spec.out_h(input.extent(2));
    const std::size_t ow = spec.out_w(input.extent(3));
    REDUCE_CHECK(grad_output.dim() == 4 && grad_output.extent(0) == batch &&
                     grad_output.extent(1) == spec.out_channels && grad_output.extent(2) == oh &&
                     grad_output.extent(3) == ow,
                 "conv2d grad_output " << grad_output.describe() << " does not match geometry");
    REDUCE_CHECK(grad_input.shape() == input.shape(),
                 "conv2d grad_input " << grad_input.describe() << " does not match input");
}

}  // namespace

void conv2d_backward_acc(const tensor& input, const tensor& weight, const tensor& grad_output,
                         const conv2d_spec& spec, tensor& grad_input, tensor& grad_weight,
                         tensor& grad_bias) {
    check_conv_backward_shapes(input, weight, grad_output, spec, grad_input);
    REDUCE_CHECK(grad_weight.shape() == weight.shape(),
                 "conv2d grad_weight " << grad_weight.describe() << " does not match weight");
    REDUCE_CHECK(grad_bias.dim() == 1 && grad_bias.extent(0) == spec.out_channels,
                 "conv2d grad_bias " << grad_bias.describe() << " does not match out_channels");
    conv2d_backward_block(input.raw(), input.extent(0), input.extent(2), input.extent(3),
                          weight.raw(), grad_output.raw(), spec, grad_input.raw(),
                          grad_weight.raw(), grad_bias.raw(), /*active=*/nullptr,
                          /*n_active=*/0, workspace::local());
}

void conv2d_backward_grouped(const tensor& input, std::size_t groups,
                             const std::vector<const tensor*>& weights,
                             const tensor& grad_output, const conv2d_spec& spec,
                             tensor& grad_input,
                             const std::vector<tensor*>& grad_weights,
                             const std::vector<tensor*>& grad_biases) {
    REDUCE_CHECK(groups > 0 && weights.size() == groups && grad_weights.size() == groups &&
                     grad_biases.size() == groups,
                 "conv2d_backward_grouped variant counts do not match " << groups
                                                                        << " groups");
    const std::size_t total = input.extent(0);
    REDUCE_CHECK(input.dim() == 4 && total % groups == 0,
                 "conv2d_backward_grouped stacked batch " << input.describe()
                                                          << " not divisible by " << groups);
    const std::size_t per_group = total / groups;
    const std::size_t in_h = input.extent(2);
    const std::size_t in_w = input.extent(3);
    check_conv_backward_shapes(input, *weights[0], grad_output, spec, grad_input);
    for (std::size_t g = 0; g < groups; ++g) {
        REDUCE_CHECK(weights[g]->shape() == weights[0]->shape() &&
                         grad_weights[g]->shape() == weights[0]->shape(),
                     "conv2d_backward_grouped variant " << g << " weight/grad shape mismatch");
        REDUCE_CHECK(grad_biases[g]->dim() == 1 &&
                         grad_biases[g]->extent(0) == spec.out_channels,
                     "conv2d_backward_grouped variant " << g << " grad_bias mismatch");
    }
    const std::vector<std::size_t> rows = conv_active_patch_rows(spec, in_h, in_w);
    const bool skip = rows.size() != spec.patch_size();
    const std::size_t image_elems = spec.in_channels * in_h * in_w;
    const std::size_t grad_elems = spec.out_channels * spec.out_h(in_h) * spec.out_w(in_w);
    workspace& ws = workspace::local();
    // Each block replays the serial layer backward with batch = per_group,
    // so chunk splits — and with them the dW/db accumulation order — match
    // the serial chip path chunk for chunk.
    for (std::size_t g = 0; g < groups; ++g) {
        conv2d_backward_block(input.raw() + g * per_group * image_elems, per_group, in_h,
                              in_w, weights[g]->raw(),
                              grad_output.raw() + g * per_group * grad_elems, spec,
                              grad_input.raw() + g * per_group * image_elems,
                              grad_weights[g]->raw(), grad_biases[g]->raw(),
                              skip ? rows.data() : nullptr, rows.size(), ws);
    }
}

conv2d_grads conv2d_backward(const tensor& input, const tensor& weight,
                             const tensor& grad_output, const conv2d_spec& spec) {
    conv2d_grads grads{tensor(input.shape()), tensor(weight.shape()),
                       tensor({spec.out_channels})};
    conv2d_backward_acc(input, weight, grad_output, spec, grads.grad_input, grads.grad_weight,
                        grads.grad_bias);
    return grads;
}

pool2d_result max_pool2d_forward(const tensor& input, const pool2d_spec& spec) {
    REDUCE_CHECK(input.dim() == 4, "max_pool2d expects [N,C,H,W], got " << input.describe());
    REDUCE_CHECK(spec.kernel > 0 && spec.stride > 0, "pool kernel/stride must be positive");
    const std::size_t batch = input.extent(0);
    const std::size_t channels = input.extent(1);
    const std::size_t in_h = input.extent(2);
    const std::size_t in_w = input.extent(3);
    REDUCE_CHECK(in_h >= spec.kernel && in_w >= spec.kernel,
                 "pool kernel larger than input " << input.describe());
    const std::size_t oh = (in_h - spec.kernel) / spec.stride + 1;
    const std::size_t ow = (in_w - spec.kernel) / spec.stride + 1;

    pool2d_result result{tensor({batch, channels, oh, ow}), {}};
    result.argmax.assign(batch * channels * oh * ow, 0);
    const float* src = input.raw();
    float* dst = result.output.raw();
    std::size_t out_idx = 0;
    for (std::size_t n = 0; n < batch; ++n) {
        for (std::size_t c = 0; c < channels; ++c) {
            const float* plane = src + (n * channels + c) * in_h * in_w;
            for (std::size_t oy = 0; oy < oh; ++oy) {
                for (std::size_t ox = 0; ox < ow; ++ox, ++out_idx) {
                    float best = -std::numeric_limits<float>::infinity();
                    std::size_t best_idx = 0;
                    for (std::size_t ky = 0; ky < spec.kernel; ++ky) {
                        const std::size_t iy = oy * spec.stride + ky;
                        for (std::size_t kx = 0; kx < spec.kernel; ++kx) {
                            const std::size_t ix = ox * spec.stride + kx;
                            const std::size_t flat = iy * in_w + ix;
                            if (plane[flat] > best) {
                                best = plane[flat];
                                best_idx = (n * channels + c) * in_h * in_w + flat;
                            }
                        }
                    }
                    dst[out_idx] = best;
                    result.argmax[out_idx] = best_idx;
                }
            }
        }
    }
    return result;
}

tensor max_pool2d_backward(const tensor& grad_output, const std::vector<std::size_t>& argmax,
                           const shape_t& input_shape) {
    REDUCE_CHECK(grad_output.numel() == argmax.size(),
                 "pool backward: argmax size " << argmax.size() << " != grad elements "
                                               << grad_output.numel());
    tensor grad_input(input_shape);
    // Validate once up front (max element) instead of per scatter: the hot
    // loop below then runs branch-free.
    if (!argmax.empty()) {
        const std::size_t worst = *std::max_element(argmax.begin(), argmax.end());
        REDUCE_CHECK(worst < grad_input.numel(),
                     "pool backward: argmax " << worst << " out of range for "
                                              << grad_input.describe());
    }
    float* dst = grad_input.raw();
    const float* src = grad_output.raw();
    for (std::size_t i = 0; i < argmax.size(); ++i) { dst[argmax[i]] += src[i]; }
    return grad_input;
}

tensor global_avg_pool_forward(const tensor& input) {
    REDUCE_CHECK(input.dim() == 4, "global_avg_pool expects [N,C,H,W], got " << input.describe());
    const std::size_t batch = input.extent(0);
    const std::size_t channels = input.extent(1);
    const std::size_t plane = input.extent(2) * input.extent(3);
    REDUCE_CHECK(plane > 0, "global_avg_pool over empty plane");
    tensor output({batch, channels});
    const float* src = input.raw();
    float* dst = output.raw();
    const float inv = 1.0f / static_cast<float>(plane);
    for (std::size_t nc = 0; nc < batch * channels; ++nc) {
        float acc = 0.0f;
        const float* p = src + nc * plane;
        for (std::size_t i = 0; i < plane; ++i) { acc += p[i]; }
        dst[nc] = acc * inv;
    }
    return output;
}

tensor global_avg_pool_backward(const tensor& grad_output, const shape_t& input_shape) {
    REDUCE_CHECK(input_shape.size() == 4, "global_avg_pool backward expects rank-4 input shape");
    const std::size_t batch = input_shape[0];
    const std::size_t channels = input_shape[1];
    const std::size_t plane = input_shape[2] * input_shape[3];
    REDUCE_CHECK(grad_output.dim() == 2 && grad_output.extent(0) == batch &&
                     grad_output.extent(1) == channels,
                 "global_avg_pool backward grad " << grad_output.describe() << " mismatch");
    tensor grad_input(input_shape);
    const float* src = grad_output.raw();
    float* dst = grad_input.raw();
    const float inv = 1.0f / static_cast<float>(plane);
    for (std::size_t nc = 0; nc < batch * channels; ++nc) {
        const float g = src[nc] * inv;
        float* p = dst + nc * plane;
        for (std::size_t i = 0; i < plane; ++i) { p[i] = g; }
    }
    return grad_input;
}

}  // namespace reduce
