#include "accel/mapping.h"

#include <algorithm>

#include "util/error.h"

namespace reduce {

gemm_mapping::gemm_mapping(const array_config& array, std::size_t fan_in, std::size_t fan_out)
    : rows_(array.rows), cols_(array.cols), fan_in_(fan_in), fan_out_(fan_out) {
    REDUCE_CHECK(fan_in > 0 && fan_out > 0, "gemm dims must be positive");
    perm_.resize(cols_);
    for (std::size_t c = 0; c < cols_; ++c) { perm_[c] = c; }
}

gemm_mapping::gemm_mapping(const array_config& array, std::size_t fan_in, std::size_t fan_out,
                           std::vector<std::size_t> column_permutation)
    : rows_(array.rows),
      cols_(array.cols),
      fan_in_(fan_in),
      fan_out_(fan_out),
      perm_(std::move(column_permutation)) {
    REDUCE_CHECK(fan_in > 0 && fan_out > 0, "gemm dims must be positive");
    validate_permutation();
}

void gemm_mapping::validate_permutation() const {
    REDUCE_CHECK(perm_.size() == cols_,
                 "column permutation size " << perm_.size() << " != array cols " << cols_);
    std::vector<bool> seen(cols_, false);
    for (const std::size_t p : perm_) {
        REDUCE_CHECK(p < cols_, "permutation entry " << p << " out of range");
        REDUCE_CHECK(!seen[p], "permutation entry " << p << " repeated");
        seen[p] = true;
    }
}

pe_coordinate gemm_mapping::pe_for_weight(std::size_t input_index,
                                          std::size_t output_index) const {
    REDUCE_CHECK(input_index < fan_in_,
                 "input index " << input_index << " out of range [0," << fan_in_ << ")");
    REDUCE_CHECK(output_index < fan_out_,
                 "output index " << output_index << " out of range [0," << fan_out_ << ")");
    return {input_index % rows_, perm_[output_index % cols_]};
}

std::size_t gemm_mapping::used_rows() const { return std::min(fan_in_, rows_); }

std::size_t gemm_mapping::used_cols() const { return std::min(fan_out_, cols_); }

double gemm_mapping::masked_weight_fraction(const fault_grid& faults) const {
    REDUCE_CHECK(faults.rows() == rows_ && faults.cols() == cols_,
                 "fault grid " << faults.rows() << "x" << faults.cols()
                               << " does not match mapping array " << rows_ << "x" << cols_);
    std::size_t masked = 0;
    for (std::size_t o = 0; o < fan_out_; ++o) {
        const std::size_t col = perm_[o % cols_];
        for (std::size_t i = 0; i < fan_in_; ++i) {
            if (is_faulty(faults.at(i % rows_, col))) { ++masked; }
        }
    }
    return static_cast<double>(masked) / static_cast<double>(fan_in_ * fan_out_);
}

}  // namespace reduce
