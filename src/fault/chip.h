// Simulated fabricated chips and fleet generation.
//
// Each chip carries its unique permanent-fault map — the per-chip input of
// the Reduce framework. A fleet models a production lot: many chips whose
// fault rates are drawn from a yield distribution.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "accel/array_config.h"
#include "accel/fault_grid.h"
#include "fault/models.h"

namespace reduce {

/// One fabricated accelerator die.
struct chip {
    std::size_t id = 0;
    std::uint64_t seed = 0;        ///< seed that generated the map (provenance)
    double nominal_fault_rate = 0; ///< rate requested from the generator
    fault_grid faults;

    /// Actual faulty fraction of this die's array.
    double measured_fault_rate() const { return faults.fault_rate(); }
};

/// How per-chip fault rates are drawn across a lot.
enum class rate_distribution {
    uniform,    ///< U(rate_lo, rate_hi)
    lognormal,  ///< exp(N(mu, sigma)) clipped to [rate_lo, rate_hi]
    fixed,      ///< every chip at rate_lo
};

/// Production-lot model.
struct fleet_config {
    std::size_t num_chips = 100;
    rate_distribution distribution = rate_distribution::uniform;
    double rate_lo = 0.01;
    double rate_hi = 0.30;
    /// lognormal parameters (only used by that distribution).
    double lognormal_mu = -2.5;
    double lognormal_sigma = 0.6;
    random_fault_config fault_model{};  ///< fault_rate field is overridden per chip
    std::uint64_t seed = 2024;
};

/// Generates a deterministic fleet: chip i uses mix_seed(cfg.seed, i).
std::vector<chip> make_fleet(const array_config& array, const fleet_config& cfg);

/// Parses a distribution name ("uniform", "lognormal", "fixed").
rate_distribution rate_distribution_from_string(const std::string& name);

}  // namespace reduce
