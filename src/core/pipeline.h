// DEPRECATED legacy façade over the policy/executor API.
//
// reduce_pipeline predates the pluggable-policy redesign: it hard-coded the
// paper's two policies (run_reduce / run_fixed) and tuned fleets strictly
// serially through one shared mutable model. It is now a thin shim over
// core/policy.h + core/fleet_executor.h, kept for one release so existing
// call sites migrate gradually. New code should use:
//
//     fleet_executor executor(model, pretrained, train, test, array, cfg,
//                             {.threads = N});
//     reduce_policy policy(table, sel_cfg);
//     policy_outcome out = executor.run(policy, fleet);
//     // or by name through the registry:
//     auto from_registry = policy_registry::global().make("reduce", ctx);
//     policy_outcome out2 = executor.run(*from_registry, fleet);
//
// The outcome types (chip_outcome, policy_outcome, model_sink) moved to
// core/fleet_executor.h; this header re-exports them via its include.
#pragma once

#include <string>
#include <vector>

#include "core/fleet_executor.h"
#include "core/resilience.h"
#include "core/selector.h"
#include "fault/chip.h"

namespace reduce {

/// DEPRECATED: orchestrates resilience analysis and per-chip retraining for
/// one (model, dataset, accelerator) triple — serial, two hard-coded
/// policies. Prefer fleet_executor + retraining_policy.
class reduce_pipeline {
public:
    /// References must outlive the pipeline; `pretrained` is the golden
    /// snapshot every chip's retraining starts from.
    reduce_pipeline(sequential& model, const model_snapshot& pretrained,
                    const dataset& train_data, const dataset& test_data,
                    const array_config& array, fat_config trainer_cfg);

    /// Step 1 convenience wrapper.
    resilience_table analyze(const resilience_config& cfg);

    /// Steps 2+3: Reduce policy over a fleet. `constraint` is a fraction
    /// (e.g. 0.91). Chips whose selection fails get the full table budget
    /// (the conservative fallback). Shim over reduce_policy + fleet_executor.
    policy_outcome run_reduce(const std::vector<chip>& fleet, const resilience_table& table,
                              const selector_config& sel_cfg, const std::string& name);

    /// Baseline: fixed `epochs` of FAT per chip (`constraint` in [0, 1]).
    /// Shim over fixed_policy + fleet_executor.
    policy_outcome run_fixed(const std::vector<chip>& fleet, double epochs, double constraint,
                             const std::string& name);

    /// Installs the tuned-model hook (pass nullptr to remove).
    void set_model_sink(model_sink sink) { sink_ = std::move(sink); }

private:
    policy_outcome run_policy(const retraining_policy& policy, const std::vector<chip>& fleet,
                              const std::string& name);

    sequential& model_;
    const model_snapshot& pretrained_;
    const dataset& train_data_;
    const dataset& test_data_;
    array_config array_;
    fat_config trainer_cfg_;
    model_sink sink_;
};

}  // namespace reduce
