// Model zoo and accelerator-mapping introspection.
//
// The experiment harnesses use small, fast models (mlp / tiny_cnn) so that
// the hundreds of retraining runs Reduce requires fit a single-core budget;
// make_vgg11 builds the paper's architecture (optionally width-scaled) for
// the examples and for full-scale runs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/conv_layers.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "util/rng.h"

namespace reduce {

/// Multi-layer perceptron: linear/relu stacks ending in a linear classifier.
/// `dims` lists layer widths including input and output, e.g. {32,64,64,10}.
std::unique_ptr<sequential> make_mlp(const std::vector<std::size_t>& dims, rng& gen,
                                     double dropout_p = 0.0);

/// Geometry of image-model inputs.
struct image_shape {
    std::size_t channels = 1;
    std::size_t height = 8;
    std::size_t width = 8;
};

/// Small conv net: [conv-relu-pool] x 2 → flatten → linear. Fast enough for
/// per-chip retraining sweeps on image workloads.
std::unique_ptr<sequential> make_tiny_cnn(const image_shape& input, std::size_t num_classes,
                                          rng& gen, std::size_t base_channels = 8);

/// Configuration for the VGG11 builder.
struct vgg11_config {
    image_shape input{3, 32, 32};
    std::size_t num_classes = 10;
    /// Multiplies every channel count; 1.0 reproduces the standard VGG11
    /// widths (64..512), smaller values give laptop-scale variants.
    double width_multiplier = 1.0;
    bool batch_norm = false;
    double classifier_dropout = 0.0;
};

/// VGG11 (configuration "A" of Simonyan & Zisserman) adapted to the input
/// size: max-pool stages are applied only while the spatial extent remains
/// divisible, so small synthetic images work with the same topology.
std::unique_ptr<sequential> make_vgg11(const vgg11_config& cfg, rng& gen);

/// A layer whose weights are executed as a GEMM on the systolic accelerator.
///
/// rows = fan-in footprint mapped onto array rows (in_features, or
/// in_c*kh*kw for conv); cols = fan-out footprint mapped onto array columns.
struct mapped_layer {
    parameter* weight = nullptr;  ///< non-owning; the layer's weight parameter
    std::size_t rows = 0;
    std::size_t cols = 0;
    std::string kind;  ///< "linear" or "conv2d"
};

/// Walks a model and returns every linear/conv2d layer in execution order —
/// exactly the layers whose weights land on the accelerator's PE array.
std::vector<mapped_layer> collect_mapped_layers(sequential& model);

/// Grouped masked forward — the model-level half of the batched multi-mask
/// evaluation engine. Runs `groups` weight variants of `model` over one
/// input batch in a single pass: layers before the first mapped layer run
/// once on the shared batch; the first mapped layer fans out via the
/// shared-operand grouped GEMM (tensor/ops, tensor/conv); every later layer
/// runs once over the variant-stacked batch (mapped layers multiply each
/// variant's block by its own weight). Returns the stacked output
/// [groups*N, ...] with variant g's rows at [g*N, (g+1)*N).
///
/// `masked_weights[l][g]` is the weight tensor variant g uses for the l-th
/// mapped layer (shape of that layer's weight, typically value ⊙ mask_g);
/// biases, batch-norm parameters, and running statistics come from `model`.
/// The model must be in eval mode — the pass is inference-only and leaves
/// no caches a backward() could use. Every variant's block is bit-identical
/// to model.forward(input) with that variant's masked weights installed,
/// for finite weights (see the grouped conv notes in tensor/conv.h).
tensor forward_masked_group(sequential& model, const tensor& input, std::size_t groups,
                            const std::vector<std::vector<tensor>>& masked_weights);

/// Reseeds every stochastic layer (dropout) for a new retraining episode:
/// the layer at position i draws its stream from mix_seed(episode_seed, i).
/// Called per chip / per sweep cell so stochastic training is a function of
/// the episode seed alone, never of which worker ran the episode before —
/// the fix that extends the bit-identical thread-count guarantee to models
/// with dropout. Returns the number of layers reseeded.
std::size_t reseed_stochastic_layers(sequential& model, std::uint64_t episode_seed);

}  // namespace reduce
