// Per-layer op scheduler: the thin planning layer between `sequential` and
// the fused tensor kernels.
//
// The blocked GEMM backend (tensor/gemm.h) can apply bias and ReLU in the
// micro-kernel tail while each output tile is still cache-hot
// (gemm_epilogue), and the conv lowering can do the same in its scatter
// pass (conv_fusion). This file decides WHEN those fused paths run: an
// op_schedule inspects a model's layer sequence once (at first forward,
// rebuilt after structural changes or a fusion-toggle flip) and emits a
// step plan — adjacent (linear, relu) and (conv2d, relu) pairs collapse
// into single fused steps; everything else passes through the layer's own
// forward/backward. Fallback is always safe: an unrecognized pattern runs
// exactly as it did before this scheduler existed.
//
// Determinism contract: fused and unfused execution are bit-identical at
// any --gemm-threads, NaN/Inf included. The fused forward records the ReLU
// keep-mask as !(z <= 0) per pre-activation (relu_backward's exact
// predicate), and the fused backward masks the upstream gradient with it
// before the matmul/conv backward — the same values the separate relu
// layer would have produced. Toggling set_layer_fusion therefore never
// changes results, only the number of memory passes per step.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace reduce {

class sequential;

/// Process-wide fused-execution toggle (default ON). Off routes every model
/// through the historical per-layer path — the unfused reference the
/// equivalence tests and bench/micro_training compare against. Returns the
/// previous value.
bool set_layer_fusion(bool enabled);

/// Current fused-execution toggle.
bool layer_fusion_enabled();

/// RAII fusion override for tests and benches.
class scoped_layer_fusion {
public:
    explicit scoped_layer_fusion(bool enabled) : previous_(set_layer_fusion(enabled)) {}
    scoped_layer_fusion(const scoped_layer_fusion&) = delete;
    scoped_layer_fusion& operator=(const scoped_layer_fusion&) = delete;
    ~scoped_layer_fusion() { set_layer_fusion(previous_); }

private:
    bool previous_;
};

/// One step of a fusion plan: `span` consecutive layers starting at `layer`
/// executed as a unit.
struct fusion_step {
    enum class op : std::uint8_t {
        passthrough,       ///< one layer through its own forward/backward
        linear_bias_relu,  ///< linear + relu via the GEMM epilogue
        conv_bias_relu,    ///< conv2d + relu via the conv scatter tail
    };
    op kind = op::passthrough;
    std::size_t layer = 0;
    std::size_t span = 1;
};

/// The execution plan a `sequential` container runs. Owned by the
/// container, rebuilt lazily whenever the layer count or the process-wide
/// fusion toggle changed since the last build.
class op_schedule {
public:
    /// Plans `model` under the current fusion toggle (all-passthrough when
    /// fusion is disabled).
    void build(sequential& model);

    /// True while the plan still matches `model` and the fusion toggle.
    bool valid_for(const sequential& model) const;

    /// Runs the planned forward pass; fused steps cache their keep-masks
    /// for the matching backward.
    tensor forward(sequential& model, const tensor& input);

    /// Runs the planned backward pass. Fused steps require the matching
    /// forward to have run on the same schedule (checked).
    tensor backward(sequential& model, const tensor& grad_output);

    /// The planned steps, in execution order.
    const std::vector<fusion_step>& steps() const { return steps_; }

private:
    struct exec_state {
        std::vector<std::uint8_t> relu_keep;  ///< keep-mask of the last fused forward
    };

    std::vector<fusion_step> steps_;
    std::vector<exec_state> state_;
    bool fused_ = false;          ///< fusion toggle at build time
    std::size_t layer_count_ = 0; ///< model size at build time
};

/// Human-readable fusion plan of `model` under the current toggle — one
/// entry per step, e.g. {"linear+bias+relu", "dropout", "linear+bias"}.
/// Fused pairs carry the "+relu" suffix; single linear/conv2d steps under
/// an enabled toggle still fuse their bias into the kernel tail and are
/// reported as "+bias".
std::vector<std::string> describe_fusion_plan(sequential& model);

}  // namespace reduce
