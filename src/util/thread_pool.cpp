#include "util/thread_pool.h"

#include <algorithm>

#include "util/error.h"

namespace reduce {

std::size_t resolve_thread_count(std::size_t requested, std::size_t cap) {
    std::size_t count = requested;
    if (count == 0) {
        count = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    if (cap > 0) { count = std::min(count, cap); }
    return std::max<std::size_t>(1, count);
}

std::size_t cap_group_at_fair_share(std::size_t group, std::size_t items,
                                    std::size_t workers) {
    const std::size_t fair = workers == 0 ? items : (items + workers - 1) / workers;
    return std::min(std::max<std::size_t>(1, group), std::max<std::size_t>(1, fair));
}

void run_workers(std::size_t workers, const std::function<void()>& job) {
    REDUCE_CHECK(workers >= 1, "run_workers needs at least one worker");
    if (workers == 1) {
        job();
        return;
    }
    thread_pool pool(workers);
    for (std::size_t i = 0; i < workers; ++i) { pool.submit(job); }
    pool.wait();
}

thread_pool::thread_pool(std::size_t num_threads) {
    REDUCE_CHECK(num_threads >= 1, "thread pool needs at least one worker");
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

thread_pool::~thread_pool() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_available_.notify_all();
    for (std::thread& worker : workers_) {
        if (worker.joinable()) { worker.join(); }
    }
}

void thread_pool::submit(std::function<void()> job) {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        REDUCE_CHECK(!stopping_, "submit on a stopping thread pool");
        queue_.push_back(std::move(job));
    }
    work_available_.notify_one();
}

void thread_pool::wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
    if (first_error_) {
        std::exception_ptr error = first_error_;
        first_error_ = nullptr;
        std::rethrow_exception(error);
    }
}

void thread_pool::worker_loop() {
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) { return; }  // stopping with nothing left to do
            job = std::move(queue_.front());
            queue_.pop_front();
            ++in_flight_;
        }
        try {
            job();
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!first_error_) { first_error_ = std::current_exception(); }
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --in_flight_;
        }
        all_done_.notify_all();
    }
}

}  // namespace reduce
