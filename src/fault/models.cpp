#include "fault/models.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/rng.h"

namespace reduce {

pe_fault sample_fault_kind(fault_kind_mix mix, rng& gen) {
    switch (mix) {
        case fault_kind_mix::all_bypassed: return pe_fault::bypassed;
        case fault_kind_mix::all_stuck_zero: return pe_fault::stuck_weight_zero;
        case fault_kind_mix::random_stuck: {
            const std::uint64_t pick = gen.uniform_index(3);
            if (pick == 0) { return pe_fault::stuck_weight_zero; }
            if (pick == 1) { return pe_fault::stuck_weight_max; }
            return pe_fault::stuck_weight_min;
        }
    }
    throw invalid_argument_error("unknown fault_kind_mix");
}

std::string to_string(fault_kind_mix mix) {
    switch (mix) {
        case fault_kind_mix::all_bypassed: return "bypassed";
        case fault_kind_mix::all_stuck_zero: return "stuck-zero";
        case fault_kind_mix::random_stuck: return "random-stuck";
    }
    throw invalid_argument_error("unknown fault_kind_mix");
}

fault_kind_mix fault_kind_mix_from_string(const std::string& name) {
    if (name == "bypassed") { return fault_kind_mix::all_bypassed; }
    if (name == "stuck-zero") { return fault_kind_mix::all_stuck_zero; }
    if (name == "random-stuck") { return fault_kind_mix::random_stuck; }
    throw invalid_argument_error("unknown fault kind mix '" + name + "'");
}

fault_grid generate_random_faults(const array_config& array, const random_fault_config& cfg,
                                  std::uint64_t seed) {
    REDUCE_CHECK(cfg.fault_rate >= 0.0 && cfg.fault_rate <= 1.0,
                 "fault rate must be in [0,1], got " << cfg.fault_rate);
    fault_grid grid(array.rows, array.cols);
    rng gen(seed);
    if (cfg.count_mode == fault_count_mode::exact) {
        const std::size_t target = static_cast<std::size_t>(
            std::llround(cfg.fault_rate * static_cast<double>(array.pe_count())));
        const std::vector<std::size_t> picks =
            gen.sample_without_replacement(array.pe_count(), target);
        for (const std::size_t flat : picks) {
            grid.set(flat / array.cols, flat % array.cols, sample_fault_kind(cfg.kind_mix, gen));
        }
    } else {
        for (std::size_t r = 0; r < array.rows; ++r) {
            for (std::size_t c = 0; c < array.cols; ++c) {
                if (gen.bernoulli(cfg.fault_rate)) {
                    grid.set(r, c, sample_fault_kind(cfg.kind_mix, gen));
                }
            }
        }
    }
    return grid;
}

fault_grid generate_clustered_faults(const array_config& array,
                                     const clustered_fault_config& cfg, std::uint64_t seed) {
    REDUCE_CHECK(cfg.fault_rate >= 0.0 && cfg.fault_rate <= 1.0,
                 "fault rate must be in [0,1], got " << cfg.fault_rate);
    REDUCE_CHECK(cfg.cluster_count > 0, "need at least one cluster");
    REDUCE_CHECK(cfg.spread > 0.0, "cluster spread must be positive");
    fault_grid grid(array.rows, array.cols);
    rng gen(seed);
    const std::size_t target = static_cast<std::size_t>(
        std::llround(cfg.fault_rate * static_cast<double>(array.pe_count())));
    if (target == 0) { return grid; }

    // Cluster centers, then Gaussian-distributed defects around them until
    // the target count of distinct faulty PEs is reached.
    std::vector<std::pair<double, double>> centers;
    centers.reserve(cfg.cluster_count);
    for (std::size_t k = 0; k < cfg.cluster_count; ++k) {
        centers.emplace_back(gen.uniform(0.0, static_cast<double>(array.rows)),
                             gen.uniform(0.0, static_cast<double>(array.cols)));
    }
    std::size_t placed = 0;
    std::size_t attempts = 0;
    const std::size_t max_attempts = 100 * target + 1000;
    while (placed < target && attempts < max_attempts) {
        ++attempts;
        const auto& center = centers[gen.uniform_index(centers.size())];
        const double dr = gen.normal(0.0, cfg.spread);
        const double dc = gen.normal(0.0, cfg.spread);
        const auto r = static_cast<std::ptrdiff_t>(std::llround(center.first + dr));
        const auto c = static_cast<std::ptrdiff_t>(std::llround(center.second + dc));
        if (r < 0 || c < 0 || r >= static_cast<std::ptrdiff_t>(array.rows) ||
            c >= static_cast<std::ptrdiff_t>(array.cols)) {
            continue;
        }
        const auto row = static_cast<std::size_t>(r);
        const auto col = static_cast<std::size_t>(c);
        if (is_faulty(grid.at(row, col))) { continue; }
        grid.set(row, col, sample_fault_kind(cfg.kind_mix, gen));
        ++placed;
    }
    // Dense clusters can saturate: fall back to uniform fill for the rest.
    while (placed < target) {
        const std::size_t flat = static_cast<std::size_t>(gen.uniform_index(array.pe_count()));
        const std::size_t row = flat / array.cols;
        const std::size_t col = flat % array.cols;
        if (is_faulty(grid.at(row, col))) { continue; }
        grid.set(row, col, sample_fault_kind(cfg.kind_mix, gen));
        ++placed;
    }
    return grid;
}

fault_grid generate_line_faults(const array_config& array, const line_fault_config& cfg,
                                std::uint64_t seed) {
    REDUCE_CHECK(cfg.fault_rate >= 0.0 && cfg.fault_rate <= 1.0,
                 "fault rate must be in [0,1], got " << cfg.fault_rate);
    REDUCE_CHECK(cfg.row_fraction >= 0.0 && cfg.row_fraction <= 1.0,
                 "row fraction must be in [0,1], got " << cfg.row_fraction);
    fault_grid grid(array.rows, array.cols);
    rng gen(seed);
    const std::size_t target = static_cast<std::size_t>(
        std::llround(cfg.fault_rate * static_cast<double>(array.pe_count())));
    if (target == 0) { return grid; }

    // Unpicked line pools; a pick removes the line (swap-with-last keeps the
    // draw O(1) and the stream deterministic). Lines may cross already
    // faulty intersections — only newly faulty PEs count toward the target.
    std::vector<std::size_t> rows_left(array.rows);
    std::vector<std::size_t> cols_left(array.cols);
    for (std::size_t r = 0; r < array.rows; ++r) { rows_left[r] = r; }
    for (std::size_t c = 0; c < array.cols; ++c) { cols_left[c] = c; }
    std::size_t placed = 0;
    while (placed < target && (!rows_left.empty() || !cols_left.empty())) {
        const bool pick_row =
            cols_left.empty() || (!rows_left.empty() && gen.bernoulli(cfg.row_fraction));
        std::vector<std::size_t>& pool = pick_row ? rows_left : cols_left;
        const std::size_t slot = static_cast<std::size_t>(gen.uniform_index(pool.size()));
        const std::size_t line = pool[slot];
        pool[slot] = pool.back();
        pool.pop_back();
        const std::size_t span = pick_row ? array.cols : array.rows;
        for (std::size_t i = 0; i < span; ++i) {
            const std::size_t r = pick_row ? line : i;
            const std::size_t c = pick_row ? i : line;
            if (is_faulty(grid.at(r, c))) { continue; }
            grid.set(r, c, sample_fault_kind(cfg.kind_mix, gen));
            ++placed;
        }
    }
    return grid;
}

}  // namespace reduce
