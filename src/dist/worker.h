// Worker of the distributed sweep/retraining service.
//
// A worker connects to a coordinator (dist/coordinator.h), proves at
// handshake that it was built from the same job config (protocol version +
// resilience fingerprint), and then pulls leased work units until the
// coordinator says shutdown:
//
//   * sweep_cells units run through resilience_analyzer::analyze_cells —
//     the returned shard table is byte-compatible with the same cells of a
//     single-machine sweep, so the coordinator's incremental merge
//     reproduces the serial artifact exactly;
//   * fleet_chip units run through chip_tuner — the chip, allocation,
//     constraint, and effective rate all arrive on the wire, so the worker
//     stays policy-agnostic; tuned-model snapshots travel back as RDNN
//     bytes when the coordinator asked for them.
//
// A background heartbeat thread keeps the active lease alive while the
// (long) training computation runs on the main thread; socket writes are
// mutex-guarded so heartbeats interleave safely with result frames.
//
// Session resume: a mid-job transport loss (coordinator restarted, network
// partition, chaos proxy severing the wire) does not end run(). The worker
// reconnects under the same capped-exponential-backoff-with-jitter budget
// the initial connect uses (per outage, reconnect_deadline_ms), re-
// handshakes with hello.resumed set, and continues pulling work. A result
// whose send failed is stashed and resent on the next session; the
// coordinator either routes it (lease known — idempotent, same bytes) or
// drops it as a stray (lease granted by a dead incarnation — the unit
// re-executes). Only when a whole reconnect budget burns without a session
// does run() return with connection_lost.
//
// Failure injection: die_after_units > 0 makes the worker close its socket
// abruptly after *receiving* its Nth work unit, before computing anything —
// the in-process stand-in for SIGKILL mid-lease that the loopback tests use
// to exercise lease revocation and reassignment.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/fleet_executor.h"
#include "core/resilience.h"
#include "dist/protocol.h"
#include "util/rng.h"

namespace reduce::dist {

struct worker_config {
    std::string host = "127.0.0.1";
    int port = 0;
    /// Reported in the hello frame; shows up in coordinator logs.
    std::string name = "worker";
    /// Job fingerprint presented at handshake — resilience_fingerprint of
    /// the sweep config both ends were built from. Empty → computed from
    /// the worker's own sweep config.
    std::string fingerprint;
    /// Intra-op (GEMM/conv-lowering) threads for this worker's kernels.
    std::size_t gemm_threads = 1;
    /// Backoff between connect attempts: delays double from
    /// backoff_initial_ms up to backoff_max_ms, each jittered into
    /// [delay/2, delay] by a seeded per-worker stream so a fleet of workers
    /// hammering a restarting coordinator desynchronizes deterministically.
    int backoff_initial_ms = 50;
    int backoff_max_ms = 2000;
    /// Jitter stream seed; 0 → derived from `name` (stable per worker).
    std::uint64_t backoff_seed = 0;
    /// Total budget for the initial connect — lets a worker start before
    /// its coordinator. Exhaustion throws io_error (misconfiguration).
    int connect_deadline_ms = 10000;
    /// Total budget for re-establishing a session after a mid-job transport
    /// loss, counted per outage (it resets on every successful handshake).
    /// 0 disables resume: a transport loss ends run() with connection_lost.
    int reconnect_deadline_ms = 10000;
    /// When set, re-resolves the coordinator port before every connect
    /// attempt (e.g. re-reading a --port-file that a restarted coordinator
    /// rewrote). Unset → `port`.
    std::function<int()> port_resolver;
    /// Failure injection: abruptly close the connection upon receiving the
    /// Nth work unit (0 → disabled).
    std::size_t die_after_units = 0;
};

/// What a worker did before its run() returned.
struct worker_report {
    std::size_t sweep_units = 0;   ///< sweep_cells units completed
    std::size_t cells = 0;         ///< total sweep cells computed
    std::size_t chips = 0;         ///< fleet chips tuned
    bool rejected = false;         ///< coordinator refused the handshake
    std::string reject_reason;
    bool shutdown_received = false;///< clean end of job
    std::string shutdown_reason;
    bool died = false;             ///< die_after_units fired
    bool connection_lost = false;  ///< a reconnect budget burned without a session
    std::size_t reconnects = 0;    ///< sessions resumed after a transport loss
    std::size_t results_resent = 0;///< computed results delivered on a later session
};

/// The shared backoff curve of initial connect and mid-job reconnect: the
/// delay before (0-based) attempt `attempt`, doubling from initial_ms,
/// capped at max_ms, jittered into [delay/2, delay] by `jitter`. Exposed
/// for tests (dist_chaos_test pins the curve).
int backoff_delay_ms(int initial_ms, int max_ms, int attempt, rng& jitter);

/// One worker process/thread. The referenced model/datasets/snapshot must
/// outlive it and are never mutated (per-unit work runs on internal clones,
/// the same thread-safety contract as resilience_analyzer / chip_tuner).
class worker {
public:
    worker(worker_config cfg, const sequential& model, const model_snapshot& pretrained,
           const dataset& train_data, const dataset& test_data, const array_config& array,
           fat_config trainer_cfg, resilience_config sweep_cfg);

    /// Connects, handshakes, and serves work units until shutdown, rejection,
    /// connection loss, or injected death. Blocking; never throws for
    /// transport-level endings (see the report flags) — only for local
    /// misconfiguration.
    worker_report run();

private:
    worker_config cfg_;
    const sequential& model_;
    const model_snapshot& pretrained_;
    const dataset& train_data_;
    const dataset& test_data_;
    array_config array_;
    fat_config trainer_cfg_;
    resilience_config sweep_cfg_;
};

}  // namespace reduce::dist
