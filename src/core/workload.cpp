#include "core/workload.h"

#include <sstream>

#include "util/error.h"
#include "util/log.h"
#include "util/rng.h"

namespace reduce {

namespace {

void append_trainer_and_array(std::ostringstream& context, const fat_config& trainer,
                              const array_config& array) {
    context << "|bs" << trainer.batch_size << "-lr" << trainer.learning_rate << "-m"
            << trainer.momentum << "-wd" << trainer.weight_decay << "-gc"
            << trainer.grad_clip << "-sh" << trainer.shuffle_seed << "|arr" << array.rows
            << 'x' << array.cols;
}

}  // namespace

std::string workload_context(const workload_config& cfg) {
    // Everything outside a resilience_config that shapes sweep numbers:
    // architecture, data generation, split, workload seed, pretraining
    // amount, trainer hyper-parameters, and accelerator geometry.
    std::ostringstream context;
    context << "mlp";
    for (const std::size_t width : cfg.hidden) { context << '-' << width; }
    context << "|gm-d" << cfg.data.dim << "-c" << cfg.data.num_classes << "-n"
            << cfg.data.samples_per_class << "-sep" << cfg.data.class_separation << "-ns"
            << cfg.data.noise_stddev << "-ds" << cfg.data.seed << "|tf"
            << cfg.train_fraction << "|seed" << cfg.seed << "|pe" << cfg.pretrain_epochs;
    append_trainer_and_array(context, cfg.trainer, cfg.array);
    return context.str();
}

std::string image_workload_context(const image_workload_config& cfg) {
    std::ostringstream context;
    context << "cnn-b" << cfg.base_channels << "|img-" << cfg.data.shape.channels << 'x'
            << cfg.data.shape.height << 'x' << cfg.data.shape.width;
    context << "-c" << cfg.data.num_classes << "-n" << cfg.data.samples_per_class << "-ns"
            << cfg.data.noise_stddev << "-ds" << cfg.data.seed << "|tf"
            << cfg.train_fraction << "|seed" << cfg.seed << "|pe" << cfg.pretrain_epochs;
    append_trainer_and_array(context, cfg.trainer, cfg.array);
    return context.str();
}

workload make_standard_workload(const workload_config& cfg) {
    REDUCE_CHECK(cfg.pretrain_epochs > 0.0, "workload needs positive pretraining epochs");
    workload w;
    w.array = cfg.array;
    w.trainer_cfg = cfg.trainer;

    const dataset full = make_gaussian_mixture(cfg.data);
    dataset_split split = split_dataset(full, cfg.train_fraction, mix_seed(cfg.seed, 1));
    const feature_stats stats = compute_feature_stats(split.train);
    standardize(split.train, stats);
    standardize(split.test, stats);
    w.train_data = std::move(split.train);
    w.test_data = std::move(split.test);

    std::vector<std::size_t> dims;
    dims.push_back(cfg.data.dim);
    dims.insert(dims.end(), cfg.hidden.begin(), cfg.hidden.end());
    dims.push_back(cfg.data.num_classes);
    rng init_gen(mix_seed(cfg.seed, 2));
    w.model = make_mlp(dims, init_gen);

    fault_aware_trainer trainer(*w.model, w.train_data, w.test_data, cfg.trainer);
    const fat_result result = trainer.train(cfg.pretrain_epochs);
    w.clean_accuracy = result.final_accuracy;
    w.pretrained = snapshot_parameters(w.model->parameters());
    w.context = workload_context(cfg);
    LOG_INFO << "workload ready: clean accuracy " << w.clean_accuracy * 100.0 << "% after "
             << result.epochs_run << " epochs";
    return w;
}

workload make_image_workload(const image_workload_config& cfg) {
    REDUCE_CHECK(cfg.pretrain_epochs > 0.0, "workload needs positive pretraining epochs");
    workload w;
    w.array = cfg.array;
    w.trainer_cfg = cfg.trainer;

    const dataset full = make_synthetic_images(cfg.data);
    dataset_split split = split_dataset(full, cfg.train_fraction, mix_seed(cfg.seed, 1));
    w.train_data = std::move(split.train);
    w.test_data = std::move(split.test);

    rng init_gen(mix_seed(cfg.seed, 2));
    w.model = make_tiny_cnn(cfg.data.shape, cfg.data.num_classes, init_gen,
                            cfg.base_channels);

    fault_aware_trainer trainer(*w.model, w.train_data, w.test_data, cfg.trainer);
    const fat_result result = trainer.train(cfg.pretrain_epochs);
    w.clean_accuracy = result.final_accuracy;
    w.pretrained = snapshot_parameters(w.model->parameters());
    w.context = image_workload_context(cfg);
    LOG_INFO << "image workload ready: clean accuracy " << w.clean_accuracy * 100.0
             << "% after " << result.epochs_run << " epochs";
    return w;
}

workload_config make_test_workload_config() {
    workload_config cfg;
    cfg.data.num_classes = 4;
    cfg.data.dim = 16;
    cfg.data.samples_per_class = 120;
    cfg.data.seed = 77;
    cfg.hidden = {32};
    cfg.pretrain_epochs = 8.0;
    cfg.array.rows = 32;
    cfg.array.cols = 32;
    cfg.trainer.batch_size = 32;
    return cfg;
}

}  // namespace reduce
