#include "dist/coordinator.h"

#include <poll.h>

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <utility>

#include "fault/mask_builder.h"
#include "util/error.h"
#include "util/log.h"

namespace reduce::dist {

namespace {

/// Lease ids travel as decimal strings (JSON numbers are doubles; a u64
/// would lose precision past 2^53). Rejects trailing garbage.
std::uint64_t parse_lease(const json_value& message) {
    const std::string& text = message.as_object().at("lease").as_string();
    try {
        std::size_t pos = 0;
        const unsigned long long value = std::stoull(text, &pos);
        if (pos != text.size()) { throw std::invalid_argument("trailing characters"); }
        return value;
    } catch (const std::exception&) {
        throw io_error("malformed lease id '" + text + "'");
    }
}

}  // namespace

fleet_job plan_fleet_job(sequential& model, const array_config& array,
                         const retraining_policy& policy, std::vector<chip> fleet,
                         const std::string& run_name) {
    REDUCE_CHECK(!fleet.empty(), "fleet job planned over an empty fleet");
    const double constraint = policy.accuracy_target();
    REDUCE_CHECK(constraint >= 0.0 && constraint <= 1.0,
                 "accuracy constraint must be a fraction in [0, 1], got " << constraint);

    // Same decision sequence as fleet_executor::run — per-chip views, then
    // one fleet-level plan() — so policies with cross-chip context (binning)
    // produce identical allocations on the distributed path.
    const resilience_table* table = policy.table();
    std::vector<chip_view> views;
    views.reserve(fleet.size());
    for (std::size_t i = 0; i < fleet.size(); ++i) {
        chip_view view;
        view.index = i;
        view.device = &fleet[i];
        view.effective_fault_rate =
            effective_fault_rate(model, array, fleet[i].faults, policy.rate_kind());
        view.table = table;
        view.epoch_budget = table != nullptr ? table->max_epochs() : 0.0;
        views.push_back(view);
    }
    const std::vector<epoch_allocation> allocations = policy.plan(views);
    REDUCE_CHECK(allocations.size() == fleet.size(),
                 "policy '" << policy.name() << "' planned " << allocations.size()
                            << " allocations for " << fleet.size() << " chips");

    fleet_job job;
    job.constraint = constraint;
    job.policy_name = run_name.empty() ? policy.name() : run_name;
    job.allocations = allocations;
    job.effective_rates.reserve(views.size());
    for (const chip_view& view : views) {
        job.effective_rates.push_back(view.effective_fault_rate);
    }
    job.fleet = std::move(fleet);
    return job;
}

namespace {

void check_timing(const coordinator_config& cfg) {
    REDUCE_CHECK(cfg.heartbeat_ms >= 1, "heartbeat_ms must be positive");
    REDUCE_CHECK(cfg.lease_timeout_ms > cfg.heartbeat_ms,
                 "lease_timeout_ms must exceed heartbeat_ms or every lease expires");
    REDUCE_CHECK(cfg.drain_timeout_ms > cfg.heartbeat_ms,
                 "drain_timeout_ms must exceed heartbeat_ms or workers mid-heartbeat "
                 "never see the shutdown frame");
}

}  // namespace

coordinator::coordinator(coordinator_config cfg, sweep_job job)
    : cfg_(std::move(cfg)), kind_(job_kind::sweep), sweep_(std::move(job)) {
    check_timing(cfg_);
    REDUCE_CHECK(cfg_.cells_per_lease >= 1, "cells_per_lease must be >= 1");
    // enumerate validates the config; the coordinator only needs indices —
    // workers re-enumerate the same canonical grid locally.
    const std::vector<sweep_cell> cells = enumerate_sweep_cells(sweep_.cfg);
    const std::string fp = resilience_fingerprint(sweep_.cfg);
    if (cfg_.fingerprint.empty()) { cfg_.fingerprint = fp; }
    REDUCE_CHECK(cfg_.fingerprint == fp,
                 "coordinator fingerprint does not match its sweep config");
    for (std::size_t begin = 0; begin < cells.size(); begin += cfg_.cells_per_lease) {
        work_unit unit;
        const std::size_t end = std::min(cells.size(), begin + cfg_.cells_per_lease);
        for (std::size_t i = begin; i < end; ++i) { unit.cells.push_back(i); }
        units_.push_back(std::move(unit));
    }
    for (std::size_t u = 0; u < units_.size(); ++u) { pending_.push_back(u); }
    stats_.units_total = units_.size();
    done_ = done_promise_.get_future().share();
}

coordinator::coordinator(coordinator_config cfg, fleet_job job)
    : cfg_(std::move(cfg)), kind_(job_kind::fleet), fleet_(std::move(job)) {
    check_timing(cfg_);
    REDUCE_CHECK(!fleet_.fleet.empty(), "fleet job with no chips");
    REDUCE_CHECK(fleet_.allocations.size() == fleet_.fleet.size() &&
                     fleet_.effective_rates.size() == fleet_.fleet.size(),
                 "fleet job carries " << fleet_.allocations.size() << " allocations / "
                                      << fleet_.effective_rates.size() << " rates for "
                                      << fleet_.fleet.size() << " chips");
    REDUCE_CHECK(!cfg_.fingerprint.empty(),
                 "fleet coordinators need an explicit job fingerprint");
    units_.reserve(fleet_.fleet.size());
    for (std::size_t i = 0; i < fleet_.fleet.size(); ++i) {
        work_unit unit;
        unit.chip_index = i;
        units_.push_back(std::move(unit));
        pending_.push_back(i);
    }
    outcomes_.resize(fleet_.fleet.size());
    if (fleet_.collect_snapshots) {
        pending_models_.resize(fleet_.fleet.size());
        model_ready_.assign(fleet_.fleet.size(), false);
    }
    stats_.units_total = units_.size();
    done_ = done_promise_.get_future().share();
}

coordinator::~coordinator() {
    stop_.store(true, std::memory_order_relaxed);
    if (loop_.joinable()) { loop_.join(); }
}

void coordinator::set_model_sink(model_sink sink) {
    REDUCE_CHECK(!loop_.joinable(), "install the model sink before start()");
    sink_ = std::move(sink);
}

void coordinator::start() {
    REDUCE_CHECK(!loop_.joinable(), "coordinator already started");
    // Replay before binding: a foreign or unreadable journal throws here,
    // synchronously, before any worker can connect. Runs after the model
    // sink is installed (set_model_sink precedes start) so replayed fleet
    // snapshots stream through it exactly like fresh ones.
    replay_journal();
    listener_.emplace(cfg_.bind_address, cfg_.port);
    port_ = listener_->port();
    LOG_INFO << "coordinator: serving a " << job_kind_name(kind_) << " job ("
             << units_.size() << " work units) on " << cfg_.bind_address << ":" << port_;
    loop_ = std::thread([this] { event_loop(); });
}

void coordinator::stop() { stop_.store(true, std::memory_order_relaxed); }

coordinator_stats coordinator::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

resilience_table coordinator::wait_table() {
    REDUCE_CHECK(kind_ == job_kind::sweep, "wait_table on a fleet coordinator");
    done_.get();  // rethrows the event loop's failure
    std::lock_guard<std::mutex> lock(mutex_);
    REDUCE_CHECK(table_result_.has_value(), "sweep result already consumed");
    resilience_table table = std::move(*table_result_);
    table_result_.reset();
    return table;
}

policy_outcome coordinator::wait_fleet() {
    REDUCE_CHECK(kind_ == job_kind::fleet, "wait_fleet on a sweep coordinator");
    done_.get();
    std::lock_guard<std::mutex> lock(mutex_);
    REDUCE_CHECK(fleet_result_.has_value(), "fleet result already consumed");
    policy_outcome outcome = std::move(*fleet_result_);
    fleet_result_.reset();
    return outcome;
}

void coordinator::event_loop() {
    try {
        run_event_loop();
        if (!job_done_) {
            fail(std::make_exception_ptr(
                error("coordinator stopped before the job completed")));
        }
    } catch (...) {
        fail(std::current_exception());
    }
}

void coordinator::run_event_loop() {
    std::vector<::pollfd> fds;
    while (true) {
        if (stop_.load(std::memory_order_relaxed)) { break; }
        if (job_done_) {
            // Linger only to flush the shutdown broadcast; stragglers still
            // computing a revoked lease find a closed socket, which their
            // worker loop treats as the end of the job.
            bool drained = true;
            for (const auto& [fd, conn] : conns_) {
                if (!conn.outbox.empty()) {
                    drained = false;
                    break;
                }
            }
            if (drained || clock::now() >= drain_deadline_) { break; }
        }

        fds.clear();
        if (!job_done_) { fds.push_back({listener_->fd(), POLLIN, 0}); }
        for (auto& [fd, conn] : conns_) {
            short events = POLLIN;
            if (!conn.outbox.empty()) { events |= POLLOUT; }
            fds.push_back({fd, events, 0});
        }

        // Sleep until the next lease deadline, capped so stop() and newly
        // queued work stay responsive.
        int timeout_ms = 100;
        const clock::time_point now = clock::now();
        for (const auto& [id, lease] : leases_) {
            if (!lease.active) { continue; }
            const auto until = std::chrono::duration_cast<std::chrono::milliseconds>(
                                   lease.deadline - now)
                                   .count();
            timeout_ms = static_cast<int>(std::min<long long>(
                timeout_ms, std::max<long long>(0, until)));
        }
        ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);

        if (!job_done_) {
            while (std::optional<tcp_socket> sock = listener_->accept_one()) {
                add_connection(std::move(*sock));
            }
        }

        for (const ::pollfd& p : fds) {
            if (p.fd == listener_->fd()) { continue; }
            auto it = conns_.find(p.fd);
            if (it == conns_.end()) { continue; }
            connection& conn = it->second;

            if ((p.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
                char buf[16384];
                bool dropped = false;
                for (;;) {
                    const tcp_socket::recv_result r = conn.sock.recv_some(buf, sizeof buf);
                    if (r.would_block) { break; }
                    if (r.closed) {
                        drop_connection(p.fd, "peer closed the connection");
                        dropped = true;
                        break;
                    }
                    conn.decoder.feed(buf, r.bytes);
                    if (r.bytes < sizeof buf) { break; }
                }
                if (dropped) { continue; }
                try {
                    while (std::optional<json_value> message = conn.decoder.next()) {
                        handle_message(p.fd, conn, *message);
                        if (conns_.find(p.fd) == conns_.end()) { break; }
                    }
                } catch (const io_error& e) {
                    {
                        std::lock_guard<std::mutex> lock(mutex_);
                        ++stats_.frames_rejected;
                    }
                    drop_connection(p.fd, std::string("protocol violation: ") + e.what());
                    continue;
                }
            }

            if (conns_.find(p.fd) == conns_.end()) { continue; }
            if (!conn.outbox.empty()) {
                try {
                    flush_outbox(conn);
                } catch (const io_error& e) {
                    drop_connection(p.fd, std::string("send failed: ") + e.what());
                    continue;
                }
            }
            if (conn.closing && conn.outbox.empty()) {
                drop_connection(p.fd, "handshake rejected");
            }
        }

        expire_leases(clock::now());
    }

    for (auto& [fd, conn] : conns_) { conn.sock.close(); }
    conns_.clear();
    listener_->close();
}

void coordinator::add_connection(tcp_socket sock) {
    const int fd = sock.fd();
    connection conn;
    conn.sock = std::move(sock);
    conns_.emplace(fd, std::move(conn));
    LOG_DEBUG << "coordinator: connection accepted (fd " << fd << ")";
}

void coordinator::drop_connection(int fd, const std::string& why) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) { return; }
    const std::string who =
        it->second.peer_name.empty() ? "fd " + std::to_string(fd) : it->second.peer_name;
    if (job_done_) {
        LOG_DEBUG << "coordinator: closing '" << who << "': " << why;
    } else {
        LOG_WARN << "coordinator: dropping '" << who << "': " << why;
    }
    const std::vector<std::uint64_t> leases = std::move(it->second.active_leases);
    parked_.erase(std::remove(parked_.begin(), parked_.end(), fd), parked_.end());
    it->second.sock.close();
    conns_.erase(it);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.connections_dropped;
    }
    for (const std::uint64_t lease : leases) { revoke_lease(lease); }
}

void coordinator::queue_frame(connection& conn, const json_value& message) {
    conn.outbox += encode_frame(message);
}

bool coordinator::flush_outbox(connection& conn) {
    while (!conn.outbox.empty()) {
        const std::size_t sent = conn.sock.send_some(conn.outbox.data(), conn.outbox.size());
        if (sent == 0) { return false; }  // kernel buffer full; POLLOUT resumes
        conn.outbox.erase(0, sent);
    }
    return true;
}

void coordinator::handle_message(int fd, connection& conn, const json_value& message) {
    if (conn.closing) { return; }  // ignore chatter from a rejected peer
    const std::string& type = message_type(message);
    if (!conn.admitted) {
        if (type != "hello") {
            throw io_error("expected hello as the first message, got '" + type + "'");
        }
        handle_hello(fd, conn, message);
        return;
    }
    if (type == "request_work") {
        handle_request_work(fd, conn);
    } else if (type == "heartbeat") {
        handle_heartbeat(fd, message);
    } else if (type == "result") {
        handle_result(fd, conn, message);
    } else {
        throw io_error("unexpected message type '" + type + "'");
    }
}

void coordinator::handle_hello(int fd, connection& conn, const json_value& message) {
    (void)fd;
    const json_object& obj = message.as_object();
    const std::int64_t version = obj.at("version").as_int();
    conn.peer_name = obj.at("name").as_string();
    const std::string& fingerprint = obj.at("fingerprint").as_string();
    const bool resumed = obj.contains("resumed") && obj.at("resumed").as_bool();

    std::string reason;
    if (version != protocol_version) {
        reason = "protocol version " + std::to_string(version) + " != coordinator's " +
                 std::to_string(protocol_version);
    } else if (fingerprint != cfg_.fingerprint) {
        reason = "job fingerprint mismatch (worker built from a different config)";
    }
    if (!reason.empty()) {
        LOG_WARN << "coordinator: rejecting worker '" << conn.peer_name << "': " << reason;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.workers_rejected;
        }
        queue_frame(conn, make_reject(reason));
        conn.closing = true;
        return;
    }

    conn.admitted = true;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.workers_admitted;
        if (resumed) { ++stats_.workers_resumed; }
    }
    const bool want_snapshots = kind_ == job_kind::fleet && fleet_.collect_snapshots;
    queue_frame(conn,
                make_welcome(kind_, cfg_.heartbeat_ms, cfg_.lease_timeout_ms, want_snapshots));
    LOG_INFO << "coordinator: admitted worker '" << conn.peer_name << "'"
             << (resumed ? " (resumed session)" : "");
}

void coordinator::handle_request_work(int fd, connection& conn) {
    if (job_done_) {
        if (!conn.shutdown_sent) {
            queue_frame(conn, make_shutdown("job complete"));
            conn.shutdown_sent = true;
        }
        return;
    }
    grant_to(fd, conn);
}

void coordinator::grant_to(int fd, connection& conn) {
    // Skip queue entries that went stale while queued (finished via a
    // straggler, or re-leased through another path).
    while (!pending_.empty()) {
        const work_unit& unit = units_[pending_.front()];
        if (unit.done || unit.leased) {
            pending_.pop_front();
            continue;
        }
        break;
    }
    if (pending_.empty()) {
        if (std::find(parked_.begin(), parked_.end(), fd) == parked_.end()) {
            parked_.push_back(fd);
        }
        return;
    }
    const std::size_t unit_id = pending_.front();
    pending_.pop_front();
    const std::uint64_t lease_id = next_lease_++;
    lease_info lease;
    lease.unit = unit_id;
    lease.conn_fd = fd;
    lease.active = true;
    lease.deadline = clock::now() + std::chrono::milliseconds(cfg_.lease_timeout_ms);
    leases_[lease_id] = lease;
    units_[unit_id].leased = true;
    conn.active_leases.push_back(lease_id);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.leases_granted;
    }
    queue_frame(conn, work_message(lease_id, units_[unit_id]));
    LOG_DEBUG << "coordinator: lease " << lease_id << " (unit " << unit_id << ") -> '"
              << conn.peer_name << "'";
}

json_value coordinator::work_message(std::uint64_t lease_id, const work_unit& unit) const {
    if (kind_ == job_kind::sweep) { return make_sweep_work(lease_id, unit.cells); }
    const std::size_t i = unit.chip_index;
    return make_chip_work(lease_id, fleet_.fleet[i], fleet_.allocations[i],
                          fleet_.constraint, fleet_.effective_rates[i]);
}

void coordinator::grant_parked() {
    while (!parked_.empty()) {
        bool grantable = false;
        for (const std::size_t unit_id : pending_) {
            if (!units_[unit_id].done && !units_[unit_id].leased) {
                grantable = true;
                break;
            }
        }
        if (!grantable) { return; }
        const int fd = parked_.front();
        parked_.pop_front();
        auto it = conns_.find(fd);
        if (it == conns_.end() || !it->second.admitted || it->second.closing) { continue; }
        grant_to(fd, it->second);
    }
}

void coordinator::handle_heartbeat(int fd, const json_value& message) {
    const std::uint64_t lease_id = parse_lease(message);
    auto it = leases_.find(lease_id);
    if (it == leases_.end()) {
        throw io_error("heartbeat for unknown lease " + std::to_string(lease_id));
    }
    // A heartbeat for a revoked lease is a straggler still computing — let
    // it run; its result is accepted or deduplicated on arrival.
    if (it->second.active && it->second.conn_fd == fd) {
        it->second.deadline =
            clock::now() + std::chrono::milliseconds(cfg_.lease_timeout_ms);
    }
}

void coordinator::handle_result(int fd, connection& conn, const json_value& message) {
    (void)fd;
    (void)conn;
    const std::uint64_t lease_id = parse_lease(message);
    auto it = leases_.find(lease_id);
    if (it == leases_.end()) {
        // A lease this incarnation never granted: a resumed worker delivering
        // work leased by a pre-crash coordinator. The lease→unit mapping died
        // with that incarnation, so the bytes cannot be routed — drop the
        // result and let the unit re-execute (idempotent, same bytes).
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.stray_results;
        LOG_DEBUG << "coordinator: stray result for unknown lease " << lease_id
                  << " dropped (granted by a previous incarnation?)";
        return;
    }
    lease_info& lease = it->second;
    if (lease.active) {
        // Accept from any admitted connection, not only the lease's own: a
        // worker that lost its socket mid-send resumes on a fresh fd and
        // resends. Deactivate the lease wherever it was recorded.
        lease.active = false;
        auto cit = conns_.find(lease.conn_fd);
        if (cit != conns_.end()) {
            auto& owned = cit->second.active_leases;
            owned.erase(std::remove(owned.begin(), owned.end(), lease_id), owned.end());
        }
        units_[lease.unit].leased = false;
    }
    work_unit& unit = units_[lease.unit];
    if (unit.done) {
        // Straggler duplicate: the unit re-executed elsewhere and finished
        // first. Same bytes either way — drop it.
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.duplicate_results;
        LOG_DEBUG << "coordinator: duplicate result for lease " << lease_id << " dropped";
        return;
    }
    try {
        if (kind_ == job_kind::sweep) {
            accept_sweep_result(message);
        } else {
            accept_fleet_result(unit, message);
        }
    } catch (const io_error&) {
        // The payload was unusable, so the unit is still open — re-queue it
        // before the connection is dropped for the violation.
        if (!unit.done && !unit.leased) {
            pending_.push_back(lease.unit);
            {
                std::lock_guard<std::mutex> lock(mutex_);
                ++stats_.leases_reassigned;
            }
            grant_parked();
        }
        throw;
    }
    if (journal_.is_open()) {
        // Durability before acknowledgment: a crash after this append replays
        // the unit, a crash before it recomputes the unit — both converge on
        // the same bytes. A disk failure, unlike a protocol violation, must
        // fail the JOB (the durability contract is broken), so it is
        // rethrown as a non-io_error the event loop treats as fatal.
        try {
            journal_.append(journal_record(lease.unit, message));
        } catch (const io_error& e) {
            throw error(std::string("cannot journal completed unit: ") + e.what());
        }
    }
    complete_unit(lease.unit);
}

json_value coordinator::journal_record(std::size_t unit_id, const json_value& message) const {
    const json_object& obj = message.as_object();
    json_object record;
    record.set("type", json_value("unit"));
    record.set("unit", json_value(unit_id));
    if (kind_ == job_kind::sweep) {
        record.set("table", obj.at("table"));
    } else {
        record.set("outcome", obj.at("outcome"));
        if (obj.contains("snapshot")) { record.set("snapshot", obj.at("snapshot")); }
    }
    return json_value(std::move(record));
}

void coordinator::replay_journal() {
    if (cfg_.journal_dir.empty()) { return; }
    const std::vector<json_value> records =
        journal_.open(cfg_.journal_dir, kind_, cfg_.fingerprint, units_.size());
    for (const json_value& record : records) {
        const json_object& obj = record.as_object();
        const std::int64_t raw = obj.at("unit").as_int();
        if (raw < 0 || static_cast<std::size_t>(raw) >= units_.size()) {
            throw io_error("journal replays unit " + std::to_string(raw) +
                           " outside the job's " + std::to_string(units_.size()) +
                           " units");
        }
        const std::size_t unit_id = static_cast<std::size_t>(raw);
        if (units_[unit_id].done) {
            LOG_WARN << "coordinator: journal repeats unit " << unit_id << "; ignoring";
            continue;
        }
        if (kind_ == job_kind::sweep) {
            accept_sweep_result(record);
        } else {
            accept_fleet_result(units_[unit_id], record);
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.journal_units_replayed;
        }
        complete_unit(unit_id);
    }
    if (!records.empty()) {
        pending_.clear();
        for (std::size_t u = 0; u < units_.size(); ++u) {
            if (!units_[u].done) { pending_.push_back(u); }
        }
        LOG_INFO << "coordinator: journal recovered " << records.size() << " unit(s); "
                 << pending_.size() << " left to compute";
    }
}

void coordinator::complete_unit(std::size_t unit_id) {
    units_[unit_id].done = true;
    ++done_units_;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.units_completed;
    }
    if (done_units_ == units_.size()) { finish_job(); }
}

void coordinator::accept_sweep_result(const json_value& message) {
    const json_object& obj = message.as_object();
    resilience_table shard = resilience_table::from_json(obj.at("table"));
    if (!acc_.has_value()) {
        // First shard seeds the accumulator; later ones go through
        // merge_into, which re-validates against what the seed established.
        if (shard.fingerprint() != cfg_.fingerprint) {
            throw io_error("shard table fingerprint does not match the job");
        }
        std::size_t total_cells = 0;
        for (const work_unit& unit : units_) { total_cells += unit.cells.size(); }
        if (shard.grid_cells() != total_cells) {
            throw io_error("shard table grid size " + std::to_string(shard.grid_cells()) +
                           " != job grid " + std::to_string(total_cells));
        }
        acc_.emplace(std::move(shard));
    } else {
        resilience_table::merge_into(*acc_, shard);
    }
}

void coordinator::accept_fleet_result(const work_unit& unit, const json_value& message) {
    const json_object& obj = message.as_object();
    chip_outcome outcome = chip_outcome_from_json(obj.at("outcome"));
    const std::size_t index = unit.chip_index;
    outcomes_[index] = outcome;
    if (fleet_.collect_snapshots && sink_) {
        if (!obj.contains("snapshot")) {
            throw io_error("fleet result lacks the requested model snapshot");
        }
        pending_models_[index] =
            snapshot_from_bytes(base64_decode(obj.at("snapshot").as_string()));
        model_ready_[index] = true;
        // Same fleet-order prefix streaming as fleet_executor: chip i sinks
        // once chips 0..i have all landed, whatever the arrival order.
        while (next_sink_ < model_ready_.size() && model_ready_[next_sink_]) {
            sink_(fleet_.fleet[next_sink_], pending_models_[next_sink_]);
            pending_models_[next_sink_] = model_snapshot{};  // free eagerly
            ++next_sink_;
        }
    }
}

void coordinator::revoke_lease(std::uint64_t lease_id) {
    auto it = leases_.find(lease_id);
    if (it == leases_.end() || !it->second.active) { return; }
    lease_info& lease = it->second;
    lease.active = false;
    auto cit = conns_.find(lease.conn_fd);
    if (cit != conns_.end()) {
        auto& owned = cit->second.active_leases;
        owned.erase(std::remove(owned.begin(), owned.end(), lease_id), owned.end());
    }
    work_unit& unit = units_[lease.unit];
    unit.leased = false;
    if (!unit.done) {
        pending_.push_back(lease.unit);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.leases_reassigned;
        }
        grant_parked();
    }
}

void coordinator::expire_leases(clock::time_point now) {
    std::vector<std::uint64_t> expired;
    for (const auto& [id, lease] : leases_) {
        if (lease.active && lease.deadline <= now) { expired.push_back(id); }
    }
    for (const std::uint64_t id : expired) {
        LOG_WARN << "coordinator: lease " << id << " missed its heartbeat deadline; "
                 << "re-queueing its unit";
        revoke_lease(id);
    }
}

void coordinator::finish_job() {
    job_done_ = true;
    drain_deadline_ = clock::now() + std::chrono::milliseconds(cfg_.drain_timeout_ms);
    if (kind_ == job_kind::sweep) {
        REDUCE_CHECK(acc_.has_value() && acc_->complete(),
                     "sweep job finished with an incomplete table");
        if (!sweep_.cache_dir.empty()) {
            resilience_cache(sweep_.cache_dir).store(*acc_, sweep_.cfg);
        }
        std::lock_guard<std::mutex> lock(mutex_);
        table_result_ = std::move(*acc_);
        acc_.reset();
    } else {
        policy_outcome outcome;
        outcome.policy_name = fleet_.policy_name;
        outcome.accuracy_constraint = fleet_.constraint;
        outcome.chips.reserve(outcomes_.size());
        for (const std::optional<chip_outcome>& chip : outcomes_) {
            REDUCE_CHECK(chip.has_value(), "fleet job finished with a missing chip outcome");
            outcome.chips.push_back(*chip);
        }
        std::lock_guard<std::mutex> lock(mutex_);
        fleet_result_ = std::move(outcome);
    }
    fulfill_done();
    for (auto& [fd, conn] : conns_) {
        if (conn.admitted && !conn.shutdown_sent) {
            queue_frame(conn, make_shutdown("job complete"));
            conn.shutdown_sent = true;
        }
    }
    parked_.clear();
    LOG_INFO << "coordinator: " << job_kind_name(kind_) << " job complete ("
             << units_.size() << " units)";
}

void coordinator::fulfill_done() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (done_set_) { return; }
    done_set_ = true;
    done_promise_.set_value();
}

void coordinator::fail(std::exception_ptr error) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (done_set_) { return; }
    done_set_ = true;
    done_promise_.set_exception(std::move(error));
}

}  // namespace reduce::dist
