// Tests for the distributed-service wire layer (dist/protocol.h): frame
// encoding/decoding under arbitrary byte fragmentation, protocol-violation
// detection, base64 round-trips and rejection of malformed input, message
// builders, and the chip_outcome / epoch_allocation JSON round-trips the
// fleet path rides on.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "dist/chaos.h"
#include "dist/protocol.h"
#include "util/error.h"
#include "util/rng.h"

namespace reduce::dist {
namespace {

json_value parse_one(const std::string& frame) {
    frame_decoder decoder;
    decoder.feed(frame.data(), frame.size());
    std::optional<json_value> message = decoder.next();
    EXPECT_TRUE(message.has_value());
    return *message;
}

TEST(Framing, RoundTripsOneMessage) {
    const json_value original = make_hello("abc123", "worker-0");
    const json_value decoded = parse_one(encode_frame(original));
    EXPECT_EQ(decoded.dump(), original.dump());
    EXPECT_EQ(message_type(decoded), "hello");
}

TEST(Framing, DecodesFramesSplitAtEveryByteBoundary) {
    const std::string frame = encode_frame(make_heartbeat(42));
    for (std::size_t split = 0; split <= frame.size(); ++split) {
        frame_decoder decoder;
        decoder.feed(frame.data(), split);
        if (split < frame.size()) {
            EXPECT_FALSE(decoder.next().has_value()) << "split at " << split;
            decoder.feed(frame.data() + split, frame.size() - split);
        }
        const std::optional<json_value> message = decoder.next();
        ASSERT_TRUE(message.has_value()) << "split at " << split;
        EXPECT_EQ(message_type(*message), "heartbeat");
        EXPECT_EQ(decoder.buffered(), 0u);
    }
}

TEST(Framing, DecodesMultipleFramesFromOneFeed) {
    std::string wire = encode_frame(make_request_work());
    wire += encode_frame(make_heartbeat(7));
    wire += encode_frame(make_shutdown("done"));
    frame_decoder decoder;
    decoder.feed(wire.data(), wire.size());
    EXPECT_EQ(message_type(*decoder.next()), "request_work");
    EXPECT_EQ(message_type(*decoder.next()), "heartbeat");
    EXPECT_EQ(message_type(*decoder.next()), "shutdown");
    EXPECT_FALSE(decoder.next().has_value());
}

TEST(Framing, RejectsZeroLengthFrames) {
    frame_decoder decoder;
    const char zeros[4] = {0, 0, 0, 0};
    decoder.feed(zeros, sizeof zeros);
    EXPECT_THROW((void)decoder.next(), io_error);
}

TEST(Framing, RejectsOversizedLengthPrefixBeforeBuffering) {
    // A garbage length prefix (e.g. the peer is not speaking this protocol
    // at all) must be rejected from the 4-byte header alone, not after
    // waiting for gigabytes that will never come.
    frame_decoder decoder;
    const char huge[4] = {'\x7f', '\x7f', '\x7f', '\x7f'};
    decoder.feed(huge, sizeof huge);
    EXPECT_THROW((void)decoder.next(), io_error);
}

TEST(Framing, RejectsUnparseablePayload) {
    frame_decoder decoder;
    const char frame[] = {0, 0, 0, 4, 'j', 'u', 'n', 'k'};
    decoder.feed(frame, sizeof frame);
    EXPECT_THROW((void)decoder.next(), io_error);
}

TEST(Framing, RejectsNonObjectPayload) {
    frame_decoder decoder;
    const std::string payload = "[1,2,3]";
    std::string frame = {0, 0, 0, static_cast<char>(payload.size())};
    frame += payload;
    decoder.feed(frame.data(), frame.size());
    EXPECT_THROW((void)decoder.next(), io_error);
}

TEST(Framing, MessageTypeRequiresTypeMember) {
    frame_decoder decoder;
    const std::string payload = "{\"kind\":\"x\"}";
    std::string frame = {0, 0, 0, static_cast<char>(payload.size())};
    frame += payload;
    decoder.feed(frame.data(), frame.size());
    const std::optional<json_value> message = decoder.next();
    ASSERT_TRUE(message.has_value());  // well-formed object...
    EXPECT_THROW((void)message_type(*message), io_error);  // ...but not a message
}

// --- Seeded randomized streams (the chaos scheduler's RNG drives the ---
// --- fragmentation, so every failure reproduces from one seed)       ---

TEST(Framing, DecodesSeededRandomFragmentationWithDuplicates) {
    // A long wire image of many frames — some duplicated, as the chaos
    // proxy's duplicate fault produces — fed to the decoder in random-sized
    // chunks at arbitrary byte boundaries. Every frame must come out intact,
    // in order, exactly as many times as it went in.
    chaos_config cfg;
    cfg.seed = 20230805;
    chaos_schedule schedule(cfg, 0);
    rng& random = schedule.random();

    std::vector<std::string> expected;
    std::string wire;
    for (int i = 0; i < 200; ++i) {
        json_value message;
        switch (random.uniform_index(3)) {
            case 0: message = make_heartbeat(random.next_u64()); break;
            case 1: message = make_sweep_work(random.next_u64(), {1, 2, 3}); break;
            default: message = make_hello("fp", "rand-" + std::to_string(i)); break;
        }
        const std::string frame = encode_frame(message);
        const int copies = random.bernoulli(0.2) ? 2 : 1;
        for (int c = 0; c < copies; ++c) {
            wire += frame;
            expected.push_back(message.dump());
        }
    }

    frame_decoder decoder;
    std::vector<std::string> got;
    std::size_t at = 0;
    while (at < wire.size()) {
        const std::size_t chunk = 1 + static_cast<std::size_t>(random.uniform_index(
                                          std::min<std::uint64_t>(4096, wire.size() - at)));
        decoder.feed(wire.data() + at, chunk);
        at += chunk;
        while (std::optional<json_value> message = decoder.next()) {
            got.push_back(message->dump());
        }
    }
    EXPECT_EQ(got, expected);
    EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(Framing, GarbledPayloadNeverDecodesToTheOriginal) {
    // One flipped payload byte must surface — either as an io_error (the
    // JSON broke) or as a message with different bytes (a digit flipped to
    // another digit). Silently yielding the original would mean the decoder
    // dropped or masked corruption.
    chaos_config cfg;
    cfg.seed = 99;
    chaos_schedule schedule(cfg, 1);
    const json_value original = make_hello("fingerprint-abc", "garble-target");
    for (int trial = 0; trial < 100; ++trial) {
        std::string frame = encode_frame(original);
        schedule.garble(frame);
        frame_decoder decoder;
        decoder.feed(frame.data(), frame.size());
        try {
            const std::optional<json_value> message = decoder.next();
            ASSERT_TRUE(message.has_value());  // length prefix was untouched
            EXPECT_NE(message->dump(), original.dump()) << "trial " << trial;
        } catch (const io_error&) {
            // Rejected outright — the common case, and always acceptable.
        }
    }
}

TEST(Framing, TruncatedFrameNeverYieldsAMessage) {
    // A frame cut anywhere (the chaos truncate fault: prefix, then the
    // connection dies) must leave the decoder waiting, never emit a partial
    // or fabricated message.
    chaos_config cfg;
    cfg.seed = 7;
    chaos_schedule schedule(cfg, 2);
    const std::string frame = encode_frame(make_shutdown("gone"));
    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t keep = schedule.truncate_point(frame.size());
        ASSERT_LT(keep, frame.size());
        frame_decoder decoder;
        decoder.feed(frame.data(), keep);
        EXPECT_FALSE(decoder.next().has_value()) << "kept " << keep;
        EXPECT_EQ(decoder.buffered(), keep);
    }
}

TEST(Base64, RoundTripsEveryResidueAndAllByteValues) {
    std::string all_bytes;
    for (int i = 0; i < 256; ++i) { all_bytes.push_back(static_cast<char>(i)); }
    // Cover every length % 3 residue, including empty.
    for (const std::size_t n : {0u, 1u, 2u, 3u, 4u, 255u, 256u}) {
        const std::string bytes = all_bytes.substr(0, n);
        const std::string encoded = base64_encode(bytes);
        EXPECT_EQ(encoded.size() % 4, 0u);
        EXPECT_EQ(base64_decode(encoded), bytes) << "length " << n;
    }
}

TEST(Base64, KnownVectors) {
    EXPECT_EQ(base64_encode(""), "");
    EXPECT_EQ(base64_encode("f"), "Zg==");
    EXPECT_EQ(base64_encode("fo"), "Zm8=");
    EXPECT_EQ(base64_encode("foo"), "Zm9v");
    EXPECT_EQ(base64_encode("foobar"), "Zm9vYmFy");
}

TEST(Base64, RejectsMalformedInput) {
    EXPECT_THROW((void)base64_decode("Zg="), io_error);       // length % 4 != 0
    EXPECT_THROW((void)base64_decode("Zm9!"), io_error);      // illegal character
    EXPECT_THROW((void)base64_decode("=m9v"), io_error);      // padding up front
    EXPECT_THROW((void)base64_decode("Zg==Zm8="), io_error);  // data after padding
}

TEST(Messages, JobKindNamesRoundTrip) {
    EXPECT_EQ(job_kind_from_name(job_kind_name(job_kind::sweep)), job_kind::sweep);
    EXPECT_EQ(job_kind_from_name(job_kind_name(job_kind::fleet)), job_kind::fleet);
    EXPECT_THROW((void)job_kind_from_name("neither"), io_error);
}

TEST(Messages, SweepWorkCarriesLeaseAsDecimalString) {
    // Lease ids are u64; beyond 2^53 they are not exactly representable as
    // JSON doubles, so they travel as decimal strings.
    const std::uint64_t big = 0xfedcba9876543210ull;
    const json_value work = parse_one(encode_frame(make_sweep_work(big, {3, 1, 4})));
    EXPECT_EQ(work.as_object().at("lease").as_string(), std::to_string(big));
    const json_array& cells = work.as_object().at("cells").as_array();
    ASSERT_EQ(cells.size(), 3u);
    EXPECT_EQ(cells[0].as_int(), 3);
    EXPECT_EQ(cells[2].as_int(), 4);
}

TEST(Messages, ChipOutcomeRoundTripsExactly) {
    chip_outcome outcome;
    outcome.chip_id = 17;
    outcome.nominal_fault_rate = 0.1234567890123456789;  // full double precision
    outcome.effective_fault_rate = 1.0 / 3.0;
    outcome.masked_weight_fraction = 0.017;
    outcome.epochs_allocated = 2.5;
    outcome.epochs_run = 2.0;
    outcome.accuracy_before = 0.4987654321;
    outcome.final_accuracy = 0.91;
    outcome.meets_constraint = true;
    outcome.selection_failed = false;
    const chip_outcome back = chip_outcome_from_json(chip_outcome_to_json(outcome));
    EXPECT_EQ(back.chip_id, outcome.chip_id);
    EXPECT_EQ(back.nominal_fault_rate, outcome.nominal_fault_rate);
    EXPECT_EQ(back.effective_fault_rate, outcome.effective_fault_rate);
    EXPECT_EQ(back.masked_weight_fraction, outcome.masked_weight_fraction);
    EXPECT_EQ(back.epochs_allocated, outcome.epochs_allocated);
    EXPECT_EQ(back.epochs_run, outcome.epochs_run);
    EXPECT_EQ(back.accuracy_before, outcome.accuracy_before);
    EXPECT_EQ(back.final_accuracy, outcome.final_accuracy);
    EXPECT_EQ(back.meets_constraint, outcome.meets_constraint);
    EXPECT_EQ(back.selection_failed, outcome.selection_failed);
}

TEST(Messages, AllocationRoundTripsExactly) {
    epoch_allocation alloc;
    alloc.epochs = 3.75;
    alloc.selection_failed = true;
    alloc.train_to_target = true;
    const epoch_allocation back = allocation_from_json(allocation_to_json(alloc));
    EXPECT_EQ(back.epochs, alloc.epochs);
    EXPECT_EQ(back.selection_failed, alloc.selection_failed);
    EXPECT_EQ(back.train_to_target, alloc.train_to_target);
}

TEST(Messages, ChipResultSurvivesTheWireWithBinarySnapshot) {
    chip_outcome outcome;
    outcome.chip_id = 3;
    outcome.final_accuracy = 0.875;
    std::string snapshot_bytes;
    for (int i = 0; i < 64; ++i) { snapshot_bytes.push_back(static_cast<char>(i * 7)); }
    const json_value result =
        parse_one(encode_frame(make_chip_result(99, outcome, snapshot_bytes)));
    EXPECT_EQ(message_type(result), "result");
    const json_object& body = result.as_object();
    EXPECT_EQ(body.at("lease").as_string(), "99");
    EXPECT_EQ(chip_outcome_from_json(body.at("outcome")).chip_id, 3u);
    EXPECT_EQ(base64_decode(body.at("snapshot").as_string()), snapshot_bytes);
}

TEST(Sockets, LoopbackFrameDelivery) {
    tcp_listener listener("127.0.0.1", 0);
    ASSERT_GT(listener.port(), 0);
    tcp_socket client = tcp_socket::connect_to("127.0.0.1", listener.port());
    std::optional<tcp_socket> server;
    for (int i = 0; i < 500 && !server.has_value(); ++i) {
        server = listener.accept_one();
        if (!server.has_value()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
    }
    ASSERT_TRUE(server.has_value());

    client.send_all(encode_frame(make_hello("fp", "sock-test")));
    frame_decoder decoder;
    char buf[4096];
    std::optional<json_value> message;
    while (!message.has_value()) {
        const tcp_socket::recv_result r = server->recv_some(buf, sizeof buf);
        ASSERT_FALSE(r.closed);
        if (r.would_block) { continue; }
        decoder.feed(buf, r.bytes);
        message = decoder.next();
    }
    EXPECT_EQ(message_type(*message), "hello");
    EXPECT_EQ(message->as_object().at("name").as_string(), "sock-test");

    // Closing the client surfaces as a clean `closed` on the server side.
    client.close();
    for (;;) {
        const tcp_socket::recv_result r = server->recv_some(buf, sizeof buf);
        if (r.would_block) { continue; }
        EXPECT_TRUE(r.closed);
        break;
    }
}

}  // namespace
}  // namespace reduce::dist
