// Ablation — the mitigation hierarchy that motivates the paper (§I):
// unmitigated stuck-at faults vs FAP (prune) vs FAM (saliency-driven
// mapping, SalvageDNN) vs FAP+T (fault-aware retraining).
//
// Reproduces the qualitative claims of Zhang et al. (VTS'18) and Hanif &
// Shafique (SalvageDNN): unmitigated faults are catastrophic even at small
// rates; FAP recovers most accuracy at low rates but degrades with rate;
// FAM buys accuracy back without retraining; FAT restores accuracy at the
// cost of retraining epochs.
//
// Output: CSV (technique, fault_rate, accuracy, retraining_epochs).
// Options: --rates ... (default 0.01,0.05,0.1,0.2,0.4), --fat-epochs E
//          (default 2).

#include <iostream>

#include "core/mitigation.h"
#include "core/workload.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/log.h"
#include "util/stopwatch.h"

using namespace reduce;

int main(int argc, char** argv) {
    try {
        const cli_args args(argc, argv);
        set_log_level(args.get_flag("verbose") ? log_level::info : log_level::warn);
        stopwatch timer;

        mitigation_config cfg;
        cfg.fault_rates = args.get_double_list("rates", {0.01, 0.05, 0.1, 0.2, 0.4});
        cfg.fat_epochs = args.get_double("fat-epochs", 2.0);
        cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 555));

        workload w = make_standard_workload();
        std::cerr << "[mitigation] clean accuracy " << w.clean_accuracy * 100.0 << "%\n";

        const std::vector<mitigation_outcome> outcomes =
            compare_mitigations(*w.model, w.pretrained, w.train_data, w.test_data, w.array,
                                w.trainer_cfg, cfg);

        csv_table out({"technique", "fault_rate", "accuracy", "retraining_epochs"});
        out.set_precision(4);
        for (const mitigation_outcome& o : outcomes) {
            out.add_row({o.technique, o.fault_rate, o.accuracy * 100.0, o.retraining_epochs});
        }
        std::cout << "# Mitigation baselines (clean accuracy "
                  << w.clean_accuracy * 100.0 << "%)\n";
        out.write(std::cout);
        std::cerr << "[mitigation] done in " << timer.seconds() << " s\n";
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
}
