// Tests for the standard and image workload bundles — the shared fixture
// of every bench/example — including the conv path through the pipeline.
#include <gtest/gtest.h>

#include "core/fleet_executor.h"
#include "core/policy.h"
#include "core/workload.h"
#include "fault/mask_builder.h"
#include "fault/models.h"
#include "util/log.h"

namespace reduce {
namespace {

TEST(Workload, TestConfigTrainsAboveNinetyPercent) {
    set_log_level(log_level::warn);
    const workload w = make_standard_workload(make_test_workload_config());
    EXPECT_GT(w.clean_accuracy, 0.9);
    EXPECT_EQ(w.pretrained.size(), w.model->parameters().size());
    EXPECT_GT(w.train_data.size(), w.test_data.size());
}

TEST(Workload, DeterministicAcrossBuilds) {
    set_log_level(log_level::warn);
    const workload a = make_standard_workload(make_test_workload_config());
    const workload b = make_standard_workload(make_test_workload_config());
    EXPECT_DOUBLE_EQ(a.clean_accuracy, b.clean_accuracy);
    for (std::size_t i = 0; i < a.pretrained.size(); ++i) {
        EXPECT_TRUE(a.pretrained.values[i] == b.pretrained.values[i]);
    }
}

TEST(Workload, SnapshotMatchesLiveModel) {
    set_log_level(log_level::warn);
    const workload w = make_standard_workload(make_test_workload_config());
    const auto params = w.model->parameters();
    for (std::size_t i = 0; i < params.size(); ++i) {
        EXPECT_TRUE(params[i]->value == w.pretrained.values[i]);
    }
}

class ImageWorkloadFixture : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        set_log_level(log_level::warn);
        image_workload_config cfg;
        cfg.data.num_classes = 4;
        cfg.data.samples_per_class = 80;
        cfg.data.noise_stddev = 0.4;
        cfg.base_channels = 6;
        cfg.pretrain_epochs = 10.0;
        cfg.array.rows = 32;
        cfg.array.cols = 32;
        cfg.trainer.batch_size = 32;
        cfg.trainer.learning_rate = 0.03;
        shared_ = new workload(make_image_workload(cfg));
    }
    static void TearDownTestSuite() {
        delete shared_;
        shared_ = nullptr;
    }
    workload& w() { return *shared_; }
    static workload* shared_;
};

workload* ImageWorkloadFixture::shared_ = nullptr;

TEST_F(ImageWorkloadFixture, CnnLearnsImageTask) {
    EXPECT_GT(w().clean_accuracy, 0.85);
}

TEST_F(ImageWorkloadFixture, ConvMasksDegradeAndFatRecovers) {
    restore_parameters(w().model->parameters(), w().pretrained);
    random_fault_config fc;
    fc.fault_rate = 0.25;
    const fault_grid faults = generate_random_faults(w().array, fc, 21);
    const mask_stats stats = attach_fault_masks(*w().model, w().array, faults);
    EXPECT_GT(stats.masked_weights, 0u);
    EXPECT_EQ(stats.layers, 3u);  // two convs + classifier

    fault_aware_trainer trainer(*w().model, w().train_data, w().test_data, w().trainer_cfg);
    const double damaged = trainer.evaluate();
    EXPECT_LT(damaged, w().clean_accuracy);
    const fat_result r = trainer.train(2.0);
    EXPECT_GT(r.final_accuracy, damaged);
    clear_fault_masks(*w().model);
    restore_parameters(w().model->parameters(), w().pretrained);
}

TEST_F(ImageWorkloadFixture, FullPipelineOnConvModel) {
    fleet_executor executor(*w().model, w().pretrained, w().train_data, w().test_data,
                            w().array, w().trainer_cfg);
    resilience_config rc;
    rc.fault_rates = {0.0, 0.2};
    rc.repeats = 2;
    rc.max_epochs = 2.0;
    const resilience_table table = executor.analyze(rc);

    fleet_config fc;
    fc.num_chips = 3;
    fc.rate_lo = 0.05;
    fc.rate_hi = 0.2;
    const std::vector<chip> fleet = make_fleet(w().array, fc);

    selector_config sel;
    sel.accuracy_target = 0.8;
    const policy_outcome outcome =
        executor.run(reduce_policy(table, sel, "conv-reduce"), fleet);
    ASSERT_EQ(outcome.chips.size(), 3u);
    for (const chip_outcome& c : outcome.chips) {
        EXPECT_GT(c.final_accuracy, 0.0);
        EXPECT_GE(c.epochs_allocated, 0.0);
    }
}

}  // namespace
}  // namespace reduce
