// Numerical gradient verification — the property test that licenses every
// training result in the repo. For each layer type (and stacked models) we
// compare analytic parameter/input gradients against central finite
// differences of the loss.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/conv_layers.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/models.h"
#include "nn/norm.h"
#include "tensor/init.h"
#include "util/rng.h"

namespace reduce {
namespace {

tensor random_tensor(shape_t shape, rng& gen, float scale = 1.0f) {
    tensor t(std::move(shape));
    uniform_init(t, -scale, scale, gen);
    return t;
}

std::vector<std::size_t> random_labels(std::size_t n, std::size_t classes, rng& gen) {
    std::vector<std::size_t> labels(n);
    for (auto& l : labels) { l = gen.uniform_index(classes); }
    return labels;
}

double loss_of(sequential& model, const tensor& x, const std::vector<std::size_t>& labels) {
    return cross_entropy_loss(model.forward(x), labels).value;
}

/// Checks every parameter gradient of `model` at (x, labels) against central
/// differences. `eps` perturbs weights; tolerances are float32-appropriate.
void check_param_grads(sequential& model, const tensor& x,
                       const std::vector<std::size_t>& labels, float eps = 1e-2f,
                       double tol = 2e-2) {
    // Analytic gradients.
    for (parameter* p : model.parameters()) { p->zero_grad(); }
    const loss_result loss = cross_entropy_loss(model.forward(x), labels);
    model.backward(loss.grad);

    for (parameter* p : model.parameters()) {
        for (std::size_t i = 0; i < p->value.numel(); ++i) {
            const float saved = p->value[i];
            p->value[i] = saved + eps;
            const double up = loss_of(model, x, labels);
            p->value[i] = saved - eps;
            const double down = loss_of(model, x, labels);
            p->value[i] = saved;
            const double numeric = (up - down) / (2.0 * eps);
            const double analytic = p->grad[i];
            const double denom = std::max({1.0, std::abs(numeric), std::abs(analytic)});
            EXPECT_NEAR(analytic, numeric, tol * denom)
                << "parameter '" << p->name << "' element " << i;
        }
    }
}

/// Checks the input gradient returned by backward().
void check_input_grad(sequential& model, const tensor& x,
                      const std::vector<std::size_t>& labels, float eps = 1e-2f,
                      double tol = 2e-2) {
    for (parameter* p : model.parameters()) { p->zero_grad(); }
    const loss_result loss = cross_entropy_loss(model.forward(x), labels);
    const tensor grad_input = model.backward(loss.grad);

    tensor probe = x;
    for (std::size_t i = 0; i < probe.numel(); ++i) {
        const float saved = probe[i];
        probe[i] = saved + eps;
        const double up = loss_of(model, probe, labels);
        probe[i] = saved - eps;
        const double down = loss_of(model, probe, labels);
        probe[i] = saved;
        const double numeric = (up - down) / (2.0 * eps);
        const double analytic = grad_input[i];
        const double denom = std::max({1.0, std::abs(numeric), std::abs(analytic)});
        EXPECT_NEAR(analytic, numeric, tol * denom) << "input element " << i;
    }
}

TEST(GradCheck, LinearLayer) {
    rng gen(101);
    sequential model;
    model.emplace<linear>(5, 4, gen);
    const tensor x = random_tensor({3, 5}, gen);
    const auto labels = random_labels(3, 4, gen);
    check_param_grads(model, x, labels);
    check_input_grad(model, x, labels);
}

TEST(GradCheck, LinearReluStack) {
    rng gen(102);
    sequential model;
    model.emplace<linear>(6, 8, gen);
    model.emplace<relu_layer>();
    model.emplace<linear>(8, 3, gen);
    const tensor x = random_tensor({4, 6}, gen);
    const auto labels = random_labels(4, 3, gen);
    check_param_grads(model, x, labels);
    check_input_grad(model, x, labels);
}

TEST(GradCheck, Conv2dLayer) {
    rng gen(103);
    sequential model;
    model.emplace<conv2d_layer>(conv2d_spec{2, 3, 3, 3, 1, 1}, gen);
    model.emplace<flatten>();
    const tensor x = random_tensor({2, 2, 4, 4}, gen);
    const auto labels = random_labels(2, 3 * 16, gen);
    check_param_grads(model, x, labels);
    check_input_grad(model, x, labels);
}

TEST(GradCheck, Conv2dStrided) {
    rng gen(104);
    sequential model;
    model.emplace<conv2d_layer>(conv2d_spec{1, 2, 3, 3, 2, 1}, gen);
    model.emplace<flatten>();
    const tensor x = random_tensor({2, 1, 5, 5}, gen);
    const auto labels = random_labels(2, 2 * 9, gen);
    check_param_grads(model, x, labels);
    check_input_grad(model, x, labels);
}

TEST(GradCheck, MaxPoolPath) {
    rng gen(105);
    sequential model;
    model.emplace<conv2d_layer>(conv2d_spec{1, 2, 3, 3, 1, 1}, gen);
    model.emplace<max_pool2d_layer>(pool2d_spec{2, 2});
    model.emplace<flatten>();
    model.emplace<linear>(2 * 2 * 2, 3, gen);
    const tensor x = random_tensor({2, 1, 4, 4}, gen);
    const auto labels = random_labels(2, 3, gen);
    check_param_grads(model, x, labels);
}

TEST(GradCheck, GlobalAvgPoolPath) {
    rng gen(106);
    sequential model;
    model.emplace<conv2d_layer>(conv2d_spec{1, 3, 3, 3, 1, 1}, gen);
    model.emplace<global_avg_pool_layer>();
    model.emplace<linear>(3, 2, gen);
    const tensor x = random_tensor({2, 1, 4, 4}, gen);
    const auto labels = random_labels(2, 2, gen);
    check_param_grads(model, x, labels);
    check_input_grad(model, x, labels);
}

TEST(GradCheck, BatchNorm1dPath) {
    rng gen(107);
    sequential model;
    model.emplace<linear>(4, 6, gen);
    model.emplace<batch_norm1d>(6);
    model.emplace<relu_layer>();
    model.emplace<linear>(6, 3, gen);
    const tensor x = random_tensor({8, 4}, gen);
    const auto labels = random_labels(8, 3, gen);
    // BN couples batch elements; slightly looser tolerance for float32.
    check_param_grads(model, x, labels, 1e-2f, 3e-2);
    check_input_grad(model, x, labels, 1e-2f, 3e-2);
}

TEST(GradCheck, BatchNorm2dPath) {
    rng gen(108);
    sequential model;
    model.emplace<conv2d_layer>(conv2d_spec{1, 2, 3, 3, 1, 1}, gen);
    model.emplace<batch_norm2d>(2);
    model.emplace<relu_layer>();
    model.emplace<flatten>();
    model.emplace<linear>(2 * 9, 2, gen);
    const tensor x = random_tensor({4, 1, 3, 3}, gen);
    const auto labels = random_labels(4, 2, gen);
    check_param_grads(model, x, labels, 1e-2f, 3e-2);
}

TEST(GradCheck, MaskedLinearGradientRespectsMask) {
    // With a mask attached, weights at masked positions must receive zero
    // *effective* update; the straight-through estimator masks the gradient
    // at the optimizer. Here we verify the loss is insensitive to masked
    // weights after apply_mask (their value is pinned to 0).
    rng gen(109);
    sequential model;
    auto& fc = model.emplace<linear>(4, 3, gen);
    tensor mask({3, 4}, 1.0f);
    mask.at2(0, 0) = 0.0f;
    mask.at2(2, 3) = 0.0f;
    fc.weight().mask = mask;
    fc.weight().apply_mask();

    const tensor x = random_tensor({3, 4}, gen);
    const auto labels = random_labels(3, 3, gen);
    // Unmasked positions must still gradcheck.
    check_param_grads(model, x, labels);
    // Loss must be invariant to masked weights being "restored": masked
    // execution equals pruned execution.
    const double base = loss_of(model, x, labels);
    fc.weight().apply_mask();
    EXPECT_DOUBLE_EQ(loss_of(model, x, labels), base);
}

TEST(GradCheck, MlpFactoryModel) {
    rng gen(110);
    auto model = make_mlp({5, 7, 4}, gen);
    const tensor x = random_tensor({3, 5}, gen);
    const auto labels = random_labels(3, 4, gen);
    check_param_grads(*model, x, labels);
}

TEST(GradCheck, MseGradient) {
    rng gen(111);
    const tensor pred = random_tensor({3, 4}, gen);
    const tensor target = random_tensor({3, 4}, gen);
    const loss_result r = mse_loss(pred, target);
    const float eps = 1e-3f;
    tensor probe = pred;
    for (std::size_t i = 0; i < probe.numel(); ++i) {
        const float saved = probe[i];
        probe[i] = saved + eps;
        const double up = mse_loss(probe, target).value;
        probe[i] = saved - eps;
        const double down = mse_loss(probe, target).value;
        probe[i] = saved;
        EXPECT_NEAR(r.grad[i], (up - down) / (2.0 * eps), 1e-3);
    }
}

TEST(GradCheck, CrossEntropyGradient) {
    rng gen(112);
    const tensor logits = random_tensor({4, 5}, gen, 2.0f);
    const auto labels = random_labels(4, 5, gen);
    const loss_result r = cross_entropy_loss(logits, labels);
    const float eps = 1e-2f;
    tensor probe = logits;
    for (std::size_t i = 0; i < probe.numel(); ++i) {
        const float saved = probe[i];
        probe[i] = saved + eps;
        const double up = cross_entropy_loss(probe, labels).value;
        probe[i] = saved - eps;
        const double down = cross_entropy_loss(probe, labels).value;
        probe[i] = saved;
        EXPECT_NEAR(r.grad[i], (up - down) / (2.0 * eps), 1e-3);
    }
}

}  // namespace
}  // namespace reduce
