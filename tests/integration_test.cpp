// Whole-system integration tests: the complete Reduce story, policy
// comparisons, and the paper's qualitative claims at reduced scale.
#include <gtest/gtest.h>

#include "core/fleet_executor.h"
#include "core/mitigation.h"
#include "core/policy.h"
#include "core/workload.h"
#include "fault/serialization.h"
#include "util/log.h"

namespace reduce {
namespace {

class IntegrationFixture : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        set_log_level(log_level::warn);
        // Slightly larger than the unit-test workload so accuracy targets
        // near the clean ceiling behave like the paper's setup.
        workload_config cfg = make_test_workload_config();
        cfg.data.samples_per_class = 250;
        cfg.data.class_separation = 3.8;
        cfg.pretrain_epochs = 12.0;
        shared_ = new workload(make_standard_workload(cfg));
    }
    static void TearDownTestSuite() {
        delete shared_;
        shared_ = nullptr;
    }
    workload& w() { return *shared_; }
    static workload* shared_;
};

workload* IntegrationFixture::shared_ = nullptr;

TEST_F(IntegrationFixture, CleanAccuracyIsHighEnoughForTargets) {
    // The whole experimental design needs a ceiling clearly above the
    // accuracy constraint band.
    EXPECT_GT(w().clean_accuracy, 0.9);
}

TEST_F(IntegrationFixture, AccuracyDegradesMonotonicallyWithFaultRateBeforeRetraining) {
    fleet_executor executor(*w().model, w().pretrained, w().train_data, w().test_data,
                            w().array, w().trainer_cfg);
    resilience_config rc;
    rc.fault_rates = {0.0, 0.2, 0.5};
    rc.repeats = 3;
    rc.max_epochs = 0.1;  // we only need the epoch-0 points here
    const resilience_table table = executor.analyze(rc);
    const double acc0 = table.accuracy_at(0.0, 0.0, statistic::mean);
    const double acc2 = table.accuracy_at(0.2, 0.0, statistic::mean);
    const double acc5 = table.accuracy_at(0.5, 0.0, statistic::mean);
    EXPECT_GT(acc0, acc2);
    EXPECT_GT(acc2, acc5);
}

TEST_F(IntegrationFixture, RetrainingRecoversAccuracy) {
    fleet_executor executor(*w().model, w().pretrained, w().train_data, w().test_data,
                            w().array, w().trainer_cfg);
    resilience_config rc;
    rc.fault_rates = {0.3};
    rc.repeats = 2;
    rc.max_epochs = 3.0;
    const resilience_table table = executor.analyze(rc);
    const double before = table.accuracy_at(0.3, 0.0, statistic::mean);
    const double after = table.accuracy_at(0.3, 3.0, statistic::mean);
    EXPECT_GT(after, before + 0.03) << "FAT must recover a damaged model";
}

TEST_F(IntegrationFixture, EndToEndReduceMeetsConstraintWithBoundedCost) {
    fleet_executor executor(*w().model, w().pretrained, w().train_data, w().test_data,
                            w().array, w().trainer_cfg);
    resilience_config rc;
    rc.fault_rates = {0.0, 0.1, 0.2, 0.3};
    rc.repeats = 3;
    rc.max_epochs = 4.0;
    const resilience_table table = executor.analyze(rc);

    fleet_config fc;
    fc.num_chips = 6;
    fc.rate_lo = 0.02;
    fc.rate_hi = 0.25;
    fc.seed = 7;
    const std::vector<chip> fleet = make_fleet(w().array, fc);

    const double constraint = 0.9;
    selector_config sel;
    sel.accuracy_target = constraint;
    sel.stat = statistic::max;
    const policy_outcome reduce_max =
        executor.run(reduce_policy(table, sel, "reduce-max"), fleet);

    // The paper's claim: most chips meet the constraint, and the average
    // retraining cost stays well below the full budget.
    EXPECT_GE(reduce_max.fraction_meeting(), 0.5);
    EXPECT_LT(reduce_max.mean_epochs(), rc.max_epochs * 0.8);
}

TEST_F(IntegrationFixture, ReduceParetoDominatesSomeFixedPolicy) {
    // Reproduces Fig. 3f's qualitative claim at small scale: against a
    // fixed policy with a similar epoch budget, Reduce-max achieves at
    // least the same constraint-hit fraction.
    fleet_executor executor(*w().model, w().pretrained, w().train_data, w().test_data,
                            w().array, w().trainer_cfg);
    resilience_config rc;
    rc.fault_rates = {0.0, 0.1, 0.2, 0.3};
    rc.repeats = 3;
    rc.max_epochs = 4.0;
    const resilience_table table = executor.analyze(rc);

    fleet_config fc;
    fc.num_chips = 6;
    fc.rate_lo = 0.02;
    fc.rate_hi = 0.25;
    fc.seed = 11;
    const std::vector<chip> fleet = make_fleet(w().array, fc);

    const double constraint = 0.9;
    selector_config sel;
    sel.accuracy_target = constraint;
    const policy_outcome reduce_max =
        executor.run(reduce_policy(table, sel, "reduce-max"), fleet);
    // Fixed policy spending half of Reduce's mean epochs on every chip.
    const policy_outcome fixed_small = executor.run(
        fixed_policy(reduce_max.mean_epochs() * 0.5, constraint), fleet, "fixed-small");
    EXPECT_GE(reduce_max.fraction_meeting(), fixed_small.fraction_meeting());
}

TEST_F(IntegrationFixture, ReduceMaxIsAtLeastAsRobustAsReduceMean) {
    fleet_executor executor(*w().model, w().pretrained, w().train_data, w().test_data,
                            w().array, w().trainer_cfg);
    resilience_config rc;
    rc.fault_rates = {0.0, 0.15, 0.3};
    rc.repeats = 3;
    rc.max_epochs = 4.0;
    const resilience_table table = executor.analyze(rc);

    fleet_config fc;
    fc.num_chips = 6;
    fc.rate_lo = 0.05;
    fc.rate_hi = 0.3;
    fc.seed = 13;
    const std::vector<chip> fleet = make_fleet(w().array, fc);

    selector_config sel;
    sel.accuracy_target = 0.9;
    sel.stat = statistic::max;
    const policy_outcome with_max =
        executor.run(reduce_policy(table, sel, "reduce-max"), fleet);
    sel.stat = statistic::mean;
    const policy_outcome with_mean =
        executor.run(reduce_policy(table, sel, "reduce-mean"), fleet);

    EXPECT_GE(with_max.fraction_meeting(), with_mean.fraction_meeting());
    EXPECT_GE(with_max.mean_epochs(), with_mean.mean_epochs() - 1e-9);
}

TEST_F(IntegrationFixture, FleetRoundTripsThroughJsonIntoPipeline) {
    fleet_config fc;
    fc.num_chips = 3;
    fc.rate_lo = 0.1;
    fc.rate_hi = 0.2;
    const std::vector<chip> fleet = make_fleet(w().array, fc);
    const std::string path = testing::TempDir() + "reduce_integration_fleet.json";
    save_fleet(path, fleet);
    const std::vector<chip> loaded = load_fleet(path);

    fleet_executor executor(*w().model, w().pretrained, w().train_data, w().test_data,
                            w().array, w().trainer_cfg);
    const policy_outcome a = executor.run(fixed_policy(0.1, 0.9), fleet, "orig");
    const policy_outcome b = executor.run(fixed_policy(0.1, 0.9), loaded, "loaded");
    ASSERT_EQ(a.chips.size(), b.chips.size());
    for (std::size_t i = 0; i < a.chips.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.chips[i].final_accuracy, b.chips[i].final_accuracy);
    }
    std::remove(path.c_str());
}

TEST_F(IntegrationFixture, MitigationHierarchyAcrossRates) {
    mitigation_config cfg;
    cfg.fault_rates = {0.1, 0.3};
    cfg.fat_epochs = 2.0;
    const auto outcomes =
        compare_mitigations(*w().model, w().pretrained, w().train_data, w().test_data,
                            w().array, w().trainer_cfg, cfg);
    ASSERT_EQ(outcomes.size(), 8u);
    for (const double rate : cfg.fault_rates) {
        double fat = 0.0;
        double unmitigated = 0.0;
        for (const auto& o : outcomes) {
            if (o.fault_rate != rate) { continue; }
            if (o.technique == "fat") { fat = o.accuracy; }
            if (o.technique == "unmitigated") { unmitigated = o.accuracy; }
        }
        EXPECT_GT(fat, unmitigated) << "rate " << rate;
    }
}

}  // namespace
}  // namespace reduce
