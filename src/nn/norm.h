// Batch normalization layers (1d over features, 2d over channels).
#pragma once

#include "nn/module.h"

namespace reduce {

/// Batch norm over [N, F] features.
///
/// Train mode normalizes with batch statistics and updates running
/// estimates; eval mode uses the running estimates. gamma/beta are
/// trainable.
class batch_norm1d : public module {
public:
    explicit batch_norm1d(std::size_t features, double momentum = 0.1, double eps = 1e-5);

    tensor forward(const tensor& input) override;
    tensor backward(const tensor& grad_output) override;
    std::vector<parameter*> parameters() override;
    std::unique_ptr<module> clone() const override;
    std::string name() const override { return "batch_norm1d"; }

    /// Running statistics (exposed for serialization and tests).
    const tensor& running_mean() const { return running_mean_; }
    const tensor& running_var() const { return running_var_; }

    /// Running statistics as restorable state (see module::state_buffers).
    std::vector<tensor*> state_buffers() override { return {&running_mean_, &running_var_}; }

private:
    std::size_t features_;
    double momentum_;
    double eps_;
    parameter gamma_;
    parameter beta_;
    tensor running_mean_;
    tensor running_var_;
    // Forward cache for backward.
    tensor cached_normalized_;
    tensor cached_inv_std_;
    std::size_t cached_batch_ = 0;
};

/// Batch norm over channels of [N, C, H, W].
class batch_norm2d : public module {
public:
    explicit batch_norm2d(std::size_t channels, double momentum = 0.1, double eps = 1e-5);

    tensor forward(const tensor& input) override;
    tensor backward(const tensor& grad_output) override;
    std::vector<parameter*> parameters() override;
    std::unique_ptr<module> clone() const override;
    std::string name() const override { return "batch_norm2d"; }

    const tensor& running_mean() const { return running_mean_; }
    const tensor& running_var() const { return running_var_; }

    /// Running statistics as restorable state (see module::state_buffers).
    std::vector<tensor*> state_buffers() override { return {&running_mean_, &running_var_}; }

private:
    std::size_t channels_;
    double momentum_;
    double eps_;
    parameter gamma_;
    parameter beta_;
    tensor running_mean_;
    tensor running_var_;
    tensor cached_normalized_;
    tensor cached_inv_std_;
    std::size_t cached_count_ = 0;  ///< N*H*W of the last training batch
};

}  // namespace reduce
