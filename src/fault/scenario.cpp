#include "fault/scenario.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.h"
#include "util/rng.h"

namespace reduce {

namespace {

// Canonical double text (%.17g): round-trips exactly and matches the
// resilience fingerprint's number formatting, so the scenario's canonical
// string is stable across producers.
std::string exact(double value) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    return buf;
}

double parse_number(const std::string& text, const std::string& what) {
    char* end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (text.empty() || end == nullptr || *end != '\0') {
        throw invalid_argument_error("scenario: bad " + what + " '" + text + "'");
    }
    return value;
}

std::uint64_t parse_u64(const std::string& text, const std::string& what) {
    char* end = nullptr;
    const std::uint64_t value = std::strtoull(text.c_str(), &end, 10);
    if (text.empty() || end == nullptr || *end != '\0') {
        throw invalid_argument_error("scenario: bad " + what + " '" + text + "'");
    }
    return value;
}

}  // namespace

std::string to_string(fault_event_kind kind) {
    switch (kind) {
        case fault_event_kind::strike: return "strike";
        case fault_event_kind::accrue: return "accrue";
        case fault_event_kind::repair: return "repair";
    }
    throw invalid_argument_error("unknown fault_event_kind");
}

fault_event_kind fault_event_kind_from_string(const std::string& name) {
    if (name == "strike") { return fault_event_kind::strike; }
    if (name == "accrue") { return fault_event_kind::accrue; }
    if (name == "repair") { return fault_event_kind::repair; }
    throw invalid_argument_error("unknown fault event kind '" + name + "'");
}

std::string to_string(recovery_mode mode) {
    switch (mode) {
        case recovery_mode::recover: return "recover";
        case recovery_mode::restart: return "restart";
    }
    throw invalid_argument_error("unknown recovery_mode");
}

recovery_mode recovery_mode_from_string(const std::string& name) {
    if (name == "recover") { return recovery_mode::recover; }
    if (name == "restart") { return recovery_mode::restart; }
    throw invalid_argument_error("unknown recovery mode '" + name + "'");
}

scenario_config parse_scenario(const std::string& spec) {
    scenario_config s;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        const std::size_t sep = std::min(spec.find(';', pos), spec.size());
        const std::string token = spec.substr(pos, sep - pos);
        pos = sep + 1;
        if (token.empty()) { continue; }
        const std::size_t eq = token.find('=');
        const std::size_t at = token.find('@');
        if (eq != std::string::npos && (at == std::string::npos || eq < at)) {
            const std::string key = token.substr(0, eq);
            const std::string value = token.substr(eq + 1);
            if (key == "mode") {
                s.mode = recovery_mode_from_string(value);
            } else if (key == "rollback") {
                s.rollback_budget = static_cast<std::size_t>(parse_u64(value, "rollback"));
            } else if (key == "seed") {
                s.seed = parse_u64(value, "seed");
            } else if (key == "kinds") {
                s.kind_mix = fault_kind_mix_from_string(value);
            } else {
                throw invalid_argument_error("scenario: unknown setting '" + key + "'");
            }
            continue;
        }
        if (at == std::string::npos) {
            throw invalid_argument_error("scenario: bad token '" + token + "'");
        }
        fault_event event;
        event.kind = fault_event_kind_from_string(token.substr(0, at));
        const std::string rest = token.substr(at + 1);
        const std::size_t colon = rest.find(':');
        event.epoch = parse_number(rest.substr(0, colon), "event epoch");
        if (colon != std::string::npos) {
            event.magnitude = parse_number(rest.substr(colon + 1), "event magnitude");
        }
        REDUCE_CHECK(event.epoch > 0.0,
                     "scenario: event epoch must be positive, got " << event.epoch);
        REDUCE_CHECK(event.magnitude >= 0.0 && event.magnitude <= 1.0,
                     "scenario: event magnitude must be in [0,1], got " << event.magnitude);
        s.events.push_back(event);
    }
    std::stable_sort(s.events.begin(), s.events.end(),
                     [](const fault_event& a, const fault_event& b) {
                         return a.epoch < b.epoch;
                     });
    for (std::size_t i = 1; i < s.events.size(); ++i) {
        REDUCE_CHECK(s.events[i].epoch != s.events[i - 1].epoch,
                     "scenario: duplicate event epoch " << s.events[i].epoch);
    }
    return s;
}

std::string scenario_to_string(const scenario_config& s) {
    if (s.empty()) { return ""; }
    std::string out;
    for (const fault_event& e : s.events) {
        if (!out.empty()) { out += ';'; }
        out += to_string(e.kind) + "@" + exact(e.epoch);
        if (e.kind != fault_event_kind::repair) { out += ":" + exact(e.magnitude); }
    }
    out += ";mode=" + to_string(s.mode);
    out += ";rollback=" + std::to_string(s.rollback_budget);
    out += ";seed=" + std::to_string(s.seed);
    out += ";kinds=" + to_string(s.kind_mix);
    return out;
}

json_value scenario_to_json(const scenario_config& s) {
    json_object root;
    json_array events;
    for (const fault_event& e : s.events) {
        json_object entry;
        entry.set("epoch", json_value(e.epoch));
        entry.set("kind", json_value(to_string(e.kind)));
        entry.set("magnitude", json_value(e.magnitude));
        events.push_back(json_value(std::move(entry)));
    }
    root.set("events", json_value(std::move(events)));
    root.set("mode", json_value(to_string(s.mode)));
    root.set("rollback_budget", json_value(s.rollback_budget));
    // Seeds use the full 64-bit range; JSON doubles would lose low bits.
    root.set("seed", json_value(std::to_string(s.seed)));
    root.set("kind_mix", json_value(to_string(s.kind_mix)));
    return json_value(std::move(root));
}

scenario_config scenario_from_json(const json_value& value) {
    const json_object& root = value.as_object();
    scenario_config s;
    for (const json_value& entry : root.at("events").as_array()) {
        const json_object& obj = entry.as_object();
        fault_event e;
        e.epoch = obj.at("epoch").as_number();
        e.kind = fault_event_kind_from_string(obj.at("kind").as_string());
        e.magnitude = obj.at("magnitude").as_number();
        s.events.push_back(e);
    }
    s.mode = recovery_mode_from_string(root.at("mode").as_string());
    s.rollback_budget = static_cast<std::size_t>(root.at("rollback_budget").as_int());
    s.seed = parse_u64(root.at("seed").as_string(), "seed");
    s.kind_mix = fault_kind_mix_from_string(root.at("kind_mix").as_string());
    return s;
}

fault_timeline timeline_for_cell(const scenario_config& s, std::size_t rate_index,
                                 std::size_t repeat) {
    return fault_timeline{s, mix_seed(s.seed, rate_index, repeat)};
}

fault_timeline timeline_for_chip(const scenario_config& s, std::size_t chip_id) {
    return fault_timeline{s, mix_seed(s.seed, chip_id)};
}

std::size_t apply_fault_event(fault_grid& grid, const fault_timeline& timeline,
                              std::size_t index) {
    REDUCE_CHECK(index < timeline.scenario.events.size(),
                 "fault event index " << index << " out of range");
    const fault_event& event = timeline.scenario.events[index];
    if (event.kind == fault_event_kind::repair) {
        return grid.repair_all(pe_fault::bypassed);
    }
    // Strike/accrue: exact-count injection into the healthy PE set. The
    // event-local stream never touches the map's generation seed, so the
    // same event replayed (rollback, re-leased work unit) lands on the
    // same PEs.
    rng gen(mix_seed(timeline.episode_seed, index));
    const std::size_t extra = static_cast<std::size_t>(
        std::llround(event.magnitude * static_cast<double>(grid.pe_count())));
    std::vector<std::size_t> healthy;
    healthy.reserve(grid.pe_count());
    for (std::size_t r = 0; r < grid.rows(); ++r) {
        for (std::size_t c = 0; c < grid.cols(); ++c) {
            if (!is_faulty(grid.at(r, c))) { healthy.push_back(r * grid.cols() + c); }
        }
    }
    const std::size_t count = std::min(extra, healthy.size());
    if (count == 0) { return 0; }
    const std::vector<std::size_t> picks =
        gen.sample_without_replacement(healthy.size(), count);
    for (const std::size_t pick : picks) {
        const std::size_t flat = healthy[pick];
        grid.set(flat / grid.cols(), flat % grid.cols(),
                 sample_fault_kind(timeline.scenario.kind_mix, gen));
    }
    return count;
}

}  // namespace reduce
