#include "nn/conv_layers.h"

#include "nn/schedule.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "util/error.h"

namespace reduce {

conv2d_layer::conv2d_layer(conv2d_spec spec, rng& gen) : spec_(spec) {
    REDUCE_CHECK(spec_.in_channels > 0 && spec_.out_channels > 0 && spec_.kernel_h > 0 &&
                     spec_.kernel_w > 0,
                 "conv2d spec has zero-sized field");
    weight_.name = "weight";
    weight_.value = tensor({spec_.out_channels, spec_.in_channels, spec_.kernel_h, spec_.kernel_w});
    weight_.grad = tensor(weight_.value.shape());
    he_normal(weight_.value, spec_.patch_size(), gen);
    bias_.name = "bias";
    bias_.value = tensor({spec_.out_channels});
    bias_.grad = tensor({spec_.out_channels});
}

tensor conv2d_layer::forward(const tensor& input) {
    cached_input_ = input;
    if (layer_fusion_enabled()) {
        // Bias moves into the lowering GEMM's epilogue (no activation);
        // bit-identical to the unfused scatter-time bias add.
        conv_fusion fusion;
        return conv2d_forward(input, weight_.value, bias_.value, spec_, &fusion);
    }
    return conv2d_forward(input, weight_.value, bias_.value, spec_);
}

tensor conv2d_layer::forward_fused_relu(const tensor& input,
                                        std::vector<std::uint8_t>& relu_keep) {
    REDUCE_CHECK(input.dim() == 4, "conv2d expects [N,C,H,W], got " << input.describe());
    cached_input_ = input;
    const std::size_t oh = spec_.out_h(input.extent(2));
    const std::size_t ow = spec_.out_w(input.extent(3));
    relu_keep.resize(input.extent(0) * spec_.out_channels * oh * ow);
    conv_fusion fusion;
    fusion.relu = true;
    fusion.relu_keep = relu_keep.data();
    return conv2d_forward(input, weight_.value, bias_.value, spec_, &fusion);
}

tensor conv2d_layer::backward(const tensor& grad_output) {
    REDUCE_CHECK(cached_input_.numel() > 0, "conv2d backward before forward");
    // Accumulate straight into the parameter gradients — the whole-batch
    // lowered backward writes dW/db in place, so no per-call temporaries.
    tensor grad_input(cached_input_.shape());
    conv2d_backward_acc(cached_input_, weight_.value, grad_output, spec_, grad_input,
                        weight_.grad, bias_.grad);
    return grad_input;
}

std::vector<parameter*> conv2d_layer::parameters() { return {&weight_, &bias_}; }

std::unique_ptr<module> conv2d_layer::clone() const {
    rng scratch(0);
    auto copy = std::make_unique<conv2d_layer>(spec_, scratch);
    copy->weight_ = weight_;
    copy->bias_ = bias_;
    copy->training_ = training_;
    return copy;
}

max_pool2d_layer::max_pool2d_layer(pool2d_spec spec) : spec_(spec) {
    REDUCE_CHECK(spec_.kernel > 0 && spec_.stride > 0, "pool spec must be positive");
}

tensor max_pool2d_layer::forward(const tensor& input) {
    cached_input_shape_ = input.shape();
    pool2d_result result = max_pool2d_forward(input, spec_);
    cached_argmax_ = std::move(result.argmax);
    return std::move(result.output);
}

tensor max_pool2d_layer::backward(const tensor& grad_output) {
    REDUCE_CHECK(!cached_argmax_.empty(), "max_pool2d backward before forward");
    return max_pool2d_backward(grad_output, cached_argmax_, cached_input_shape_);
}

std::unique_ptr<module> max_pool2d_layer::clone() const {
    auto copy = std::make_unique<max_pool2d_layer>(spec_);
    copy->training_ = training_;
    return copy;
}

tensor global_avg_pool_layer::forward(const tensor& input) {
    cached_input_shape_ = input.shape();
    return global_avg_pool_forward(input);
}

tensor global_avg_pool_layer::backward(const tensor& grad_output) {
    REDUCE_CHECK(!cached_input_shape_.empty(), "global_avg_pool backward before forward");
    return global_avg_pool_backward(grad_output, cached_input_shape_);
}

std::unique_ptr<module> global_avg_pool_layer::clone() const {
    auto copy = std::make_unique<global_avg_pool_layer>();
    copy->training_ = training_;
    return copy;
}

}  // namespace reduce
