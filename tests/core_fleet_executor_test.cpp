// Tests for chip_tuner and fleet_executor: byte-identical equivalence with
// the legacy reduce_pipeline entry points, thread-count independence of the
// parallel fan-out, sink/progress ordering, and input validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/fleet_executor.h"
#include "core/pipeline.h"
#include "core/policy.h"
#include "core/workload.h"
#include "util/error.h"

namespace reduce {
namespace {

void expect_identical(const policy_outcome& a, const policy_outcome& b) {
    EXPECT_DOUBLE_EQ(a.accuracy_constraint, b.accuracy_constraint);
    ASSERT_EQ(a.chips.size(), b.chips.size());
    for (std::size_t i = 0; i < a.chips.size(); ++i) {
        const chip_outcome& x = a.chips[i];
        const chip_outcome& y = b.chips[i];
        EXPECT_EQ(x.chip_id, y.chip_id) << "chip " << i;
        // Exact (bit-level) equality is the contract: both paths must run the
        // same float operations in the same order.
        EXPECT_EQ(x.nominal_fault_rate, y.nominal_fault_rate) << "chip " << i;
        EXPECT_EQ(x.effective_fault_rate, y.effective_fault_rate) << "chip " << i;
        EXPECT_EQ(x.masked_weight_fraction, y.masked_weight_fraction) << "chip " << i;
        EXPECT_EQ(x.epochs_allocated, y.epochs_allocated) << "chip " << i;
        EXPECT_EQ(x.epochs_run, y.epochs_run) << "chip " << i;
        EXPECT_EQ(x.accuracy_before, y.accuracy_before) << "chip " << i;
        EXPECT_EQ(x.final_accuracy, y.final_accuracy) << "chip " << i;
        EXPECT_EQ(x.meets_constraint, y.meets_constraint) << "chip " << i;
        EXPECT_EQ(x.selection_failed, y.selection_failed) << "chip " << i;
    }
}

class FleetExecutorFixture : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        shared_ = new workload(make_standard_workload(make_test_workload_config()));
        fleet_config fc;
        fc.num_chips = 4;
        fc.rate_lo = 0.05;
        fc.rate_hi = 0.3;
        fc.seed = 91;
        fleet_ = new std::vector<chip>(make_fleet(shared_->array, fc));
        fleet_executor executor(*shared_->model, shared_->pretrained, shared_->train_data,
                                shared_->test_data, shared_->array, shared_->trainer_cfg);
        resilience_config rc;
        rc.fault_rates = {0.0, 0.15, 0.3};
        rc.repeats = 2;
        rc.max_epochs = 3.0;
        table_ = new resilience_table(executor.analyze(rc));
    }
    static void TearDownTestSuite() {
        delete shared_;
        delete fleet_;
        delete table_;
        shared_ = nullptr;
        fleet_ = nullptr;
        table_ = nullptr;
    }

    workload& w() { return *shared_; }
    const std::vector<chip>& fleet() { return *fleet_; }
    const resilience_table& table() { return *table_; }

    fleet_executor make_executor(std::size_t threads = 1) {
        return fleet_executor(*shared_->model, shared_->pretrained, shared_->train_data,
                              shared_->test_data, shared_->array, shared_->trainer_cfg,
                              fleet_executor_config{.threads = threads});
    }

    selector_config sel_config() {
        selector_config sel;
        sel.accuracy_target = 0.85;
        return sel;
    }

    static workload* shared_;
    static std::vector<chip>* fleet_;
    static resilience_table* table_;
};

workload* FleetExecutorFixture::shared_ = nullptr;
std::vector<chip>* FleetExecutorFixture::fleet_ = nullptr;
resilience_table* FleetExecutorFixture::table_ = nullptr;

TEST_F(FleetExecutorFixture, ReducePolicyMatchesLegacyRunReduce) {
    reduce_pipeline legacy(*shared_->model, shared_->pretrained, shared_->train_data,
                           shared_->test_data, shared_->array, shared_->trainer_cfg);
    const policy_outcome old_api =
        legacy.run_reduce(fleet(), table(), sel_config(), "reduce-max");

    fleet_executor executor = make_executor();
    const reduce_policy policy(table(), sel_config());
    const policy_outcome new_api = executor.run(policy, fleet(), "reduce-max");

    EXPECT_EQ(old_api.policy_name, new_api.policy_name);
    expect_identical(old_api, new_api);
}

TEST_F(FleetExecutorFixture, FixedPolicyMatchesLegacyRunFixed) {
    reduce_pipeline legacy(*shared_->model, shared_->pretrained, shared_->train_data,
                           shared_->test_data, shared_->array, shared_->trainer_cfg);
    const policy_outcome old_api = legacy.run_fixed(fleet(), 0.5, 0.85, "fixed-0.5");

    fleet_executor executor = make_executor();
    const fixed_policy policy(0.5, 0.85);
    const policy_outcome new_api = executor.run(policy, fleet(), "fixed-0.5");

    expect_identical(old_api, new_api);
}

TEST_F(FleetExecutorFixture, OutcomesAreThreadCountIndependent) {
    const reduce_policy reduce(table(), sel_config());
    const fixed_policy fixed(0.4, 0.85);
    const policy_outcome reduce_serial = make_executor(1).run(reduce, fleet());
    const policy_outcome fixed_serial = make_executor(1).run(fixed, fleet());
    for (const std::size_t threads : {2u, 8u}) {
        fleet_executor executor = make_executor(threads);
        expect_identical(reduce_serial, executor.run(reduce, fleet()));
        expect_identical(fixed_serial, executor.run(fixed, fleet()));
    }
}

TEST_F(FleetExecutorFixture, OutcomesAreEvalBatchIndependentAcrossThreads) {
    // The grouped accuracy_before path (batched multi-mask evaluation) must
    // collapse the whole threads × eval-batch matrix to the serial result —
    // including ragged final groups (fleet of 4 at eval-batch 3) and groups
    // larger than the fleet.
    const reduce_policy reduce(table(), sel_config());
    const policy_outcome serial = make_executor(1).run(reduce, fleet());
    for (const std::size_t threads : {1u, 2u, 8u}) {
        for (const std::size_t eval_batch : {2u, 3u, 4u, 16u}) {
            fleet_executor executor(*shared_->model, shared_->pretrained,
                                    shared_->train_data, shared_->test_data, shared_->array,
                                    shared_->trainer_cfg,
                                    fleet_executor_config{.threads = threads,
                                                          .eval_batch_chips = eval_batch});
            expect_identical(serial, executor.run(reduce, fleet()));
        }
    }
}

TEST_F(FleetExecutorFixture, OutcomesAndSnapshotsAreGemmThreadIndependent) {
    // The executor half of the two-level determinism matrix: gemm threads
    // (1/2/8) × fleet workers (1/4) must reproduce the serial outcomes AND
    // stream byte-identical tuned snapshots (parameters and state buffers)
    // to the model sink.
    const reduce_policy reduce(table(), sel_config());
    const auto run_matrix_cell = [&](std::size_t workers, std::size_t gemm_threads) {
        fleet_executor executor(*shared_->model, shared_->pretrained, shared_->train_data,
                                shared_->test_data, shared_->array, shared_->trainer_cfg,
                                fleet_executor_config{.threads = workers,
                                                      .gemm_threads = gemm_threads});
        std::vector<model_snapshot> snaps;
        executor.set_model_sink(
            [&](const chip&, const model_snapshot& snap) { snaps.push_back(snap); });
        policy_outcome outcome = executor.run(reduce, fleet());
        return std::make_pair(std::move(outcome), std::move(snaps));
    };
    const auto [ref_outcome, ref_snaps] = run_matrix_cell(1, 1);
    ASSERT_EQ(ref_snaps.size(), fleet().size());
    for (const std::size_t gemm_threads : {2u, 8u}) {
        for (const std::size_t workers : {1u, 4u}) {
            const auto [outcome, snaps] = run_matrix_cell(workers, gemm_threads);
            expect_identical(ref_outcome, outcome);
            ASSERT_EQ(snaps.size(), ref_snaps.size());
            for (std::size_t i = 0; i < snaps.size(); ++i) {
                ASSERT_EQ(snaps[i].size(), ref_snaps[i].size());
                for (std::size_t p = 0; p < snaps[i].size(); ++p) {
                    EXPECT_TRUE(snaps[i].values[p] == ref_snaps[i].values[p])
                        << "chip " << i << " param " << p << " workers=" << workers
                        << " gemm_threads=" << gemm_threads;
                }
                EXPECT_EQ(snaps[i].state.size(), ref_snaps[i].state.size());
                for (std::size_t s = 0; s < snaps[i].state.size(); ++s) {
                    EXPECT_TRUE(snaps[i].state[s] == ref_snaps[i].state[s])
                        << "chip " << i << " state " << s;
                }
            }
        }
    }
}

TEST_F(FleetExecutorFixture, RunNameDefaultsToPolicyName) {
    const fixed_policy policy(0.0, 0.85, "my-fixed");
    fleet_executor executor = make_executor();
    EXPECT_EQ(executor.run(policy, fleet()).policy_name, "my-fixed");
    EXPECT_EQ(executor.run(policy, fleet(), "override").policy_name, "override");
}

TEST_F(FleetExecutorFixture, SinksFireInFleetOrderAtAnyThreadCount) {
    for (const std::size_t threads : {1u, 4u}) {
        fleet_executor executor = make_executor(threads);
        std::vector<std::size_t> seen_ids;
        executor.set_model_sink([&](const chip& c, const model_snapshot& snap) {
            seen_ids.push_back(c.id);
            EXPECT_EQ(snap.size(), w().pretrained.size());
        });
        (void)executor.run(fixed_policy(0.1, 0.85), fleet());
        ASSERT_EQ(seen_ids.size(), fleet().size());
        for (std::size_t i = 0; i < fleet().size(); ++i) {
            EXPECT_EQ(seen_ids[i], fleet()[i].id) << "threads=" << threads;
        }
    }
}

TEST_F(FleetExecutorFixture, ProgressReportsEveryChipExactlyOnce) {
    fleet_executor executor = make_executor(2);
    std::vector<std::size_t> completed_counts;
    std::vector<std::size_t> chip_ids;
    executor.set_progress_sink(
        [&](std::size_t completed, std::size_t total, const chip_outcome& outcome) {
            EXPECT_EQ(total, fleet().size());
            completed_counts.push_back(completed);
            chip_ids.push_back(outcome.chip_id);
        });
    (void)executor.run(fixed_policy(0.1, 0.85), fleet());
    ASSERT_EQ(completed_counts.size(), fleet().size());
    // Completion order is timing-dependent, but the count set and the chip
    // set are not.
    std::sort(completed_counts.begin(), completed_counts.end());
    std::sort(chip_ids.begin(), chip_ids.end());
    for (std::size_t i = 0; i < fleet().size(); ++i) {
        EXPECT_EQ(completed_counts[i], i + 1);
        EXPECT_EQ(chip_ids[i], fleet()[i].id);
    }
}

TEST_F(FleetExecutorFixture, PrototypeModelIsNeverMutated) {
    // The executor clones per worker; the shared prototype must stay bitwise
    // intact through a run — no restore needed afterwards.
    restore_parameters(w().model->parameters(), w().pretrained);
    fleet_executor executor = make_executor(2);
    (void)executor.run(fixed_policy(0.3, 0.85), fleet());
    for (std::size_t i = 0; i < w().pretrained.size(); ++i) {
        EXPECT_TRUE(w().model->parameters()[i]->value == w().pretrained.values[i]);
        EXPECT_FALSE(w().model->parameters()[i]->has_mask());
    }
}

TEST_F(FleetExecutorFixture, OracleChargesAtMostTheBudgetAndStopsAtTarget) {
    fleet_executor executor = make_executor();
    const oracle_policy policy(table(), 0.85);
    const policy_outcome outcome = executor.run(policy, fleet());
    ASSERT_EQ(outcome.chips.size(), fleet().size());
    for (const chip_outcome& c : outcome.chips) {
        EXPECT_DOUBLE_EQ(c.epochs_allocated, table().max_epochs());
        EXPECT_LE(c.epochs_run, table().max_epochs() + 1e-9);
        if (c.meets_constraint) {
            // The charged amount is the first checkpoint meeting the target,
            // and the reported accuracy is the accuracy at that checkpoint.
            EXPECT_GE(c.final_accuracy, 0.85);
        }
    }
    // The oracle is the cost lower bound among target-meeting policies: it
    // never charges more than the fixed-at-budget baseline.
    const policy_outcome full =
        executor.run(fixed_policy(table().max_epochs(), 0.85), fleet());
    EXPECT_LE(outcome.total_epochs(), full.total_epochs() + 1e-9);
}

TEST_F(FleetExecutorFixture, ValidatesFleetAndConstraint) {
    fleet_executor executor = make_executor();
    const fixed_policy policy(0.1, 0.85);
    EXPECT_THROW((void)executor.run(policy, {}), error);

    // A policy reporting an out-of-range target is rejected up front.
    class bad_target_policy : public retraining_policy {
    public:
        std::string name() const override { return "bad"; }
        double accuracy_target() const override { return 1.5; }
        epoch_allocation allocate(const chip_view&) const override { return {}; }
    };
    EXPECT_THROW((void)executor.run(bad_target_policy{}, fleet()), error);

    // Legacy shim: same validation through run_fixed.
    reduce_pipeline legacy(*shared_->model, shared_->pretrained, shared_->train_data,
                           shared_->test_data, shared_->array, shared_->trainer_cfg);
    EXPECT_THROW((void)legacy.run_fixed(fleet(), 0.1, -0.2, "x"), error);
    EXPECT_THROW((void)legacy.run_fixed(fleet(), 0.1, 1.2, "x"), error);
}

TEST_F(FleetExecutorFixture, ChipTunerRecoversFromMidTuneFailure) {
    // A tuner whose training throws must come back clean: masks cleared,
    // weights restored, next tune unaffected (the RAII guard contract).
    chip_tuner tuner(*w().model, w().pretrained, w().train_data, w().test_data, w().array,
                     w().trainer_cfg);
    epoch_allocation ok;
    ok.epochs = 0.2;
    const chip_outcome before = tuner.tune(fleet()[0], ok, 0.85, 0.1);

    epoch_allocation bad;
    bad.epochs = -1.0;  // the trainer rejects this AFTER masks were attached
    EXPECT_THROW((void)tuner.tune(fleet()[0], bad, 0.85, 0.1), error);

    const chip_outcome after = tuner.tune(fleet()[0], ok, 0.85, 0.1);
    EXPECT_EQ(before.final_accuracy, after.final_accuracy);
    EXPECT_EQ(before.accuracy_before, after.accuracy_before);
}

}  // namespace
}  // namespace reduce
