// Convolution and pooling primitives (im2col formulation).
//
// conv2d lowers to the matmul  [out_c] x [in_c*kh*kw]  ·  [in_c*kh*kw] x [oh*ow]
// — exactly the GEMM shape a weight-stationary systolic array executes,
// which is why the fault-map → weight-mask equivalence proven for linear
// layers carries over to convolutions unchanged.
//
// The forward/backward entry points lower the WHOLE batch at once: one
// [patch, N*oh*ow] patch matrix and a single blocked GEMM per layer instead
// of N small ones, with every scratch buffer leased from the thread-local
// workspace arena (no per-image copies, no per-call allocation after
// warm-up). When the patch matrix would exceed the lowering budget the
// batch is split into fixed-size image chunks — a shape-only decision, so
// results stay deterministic for a given geometry.
//
// Intra-op parallelism: when the process-wide budget (set_intra_op_threads
// / --gemm-threads) exceeds 1, large lowering/scatter loops fan out over
// the persistent intra-op pool — im2col by patch row (disjoint destination
// rows), col2im by image (each pixel's += chain stays whole on one thread
// in serial order), output scatter and the backward dY gather/bias sums by
// channel. Every partition keeps each output element's operation sequence
// identical to the serial loop, so results are bit-identical at any
// budget; the engage thresholds are shape-only.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace reduce {

/// Static geometry of a conv2d: kernel, stride, padding.
struct conv2d_spec {
    std::size_t in_channels = 0;
    std::size_t out_channels = 0;
    std::size_t kernel_h = 0;
    std::size_t kernel_w = 0;
    std::size_t stride = 1;
    std::size_t padding = 0;

    /// Output spatial height for an input of height `in_h`; throws when the
    /// geometry is inconsistent.
    std::size_t out_h(std::size_t in_h) const;

    /// Output spatial width for an input of width `in_w`.
    std::size_t out_w(std::size_t in_w) const;

    /// Rows of the lowered patch matrix: in_channels * kernel_h * kernel_w.
    std::size_t patch_size() const { return in_channels * kernel_h * kernel_w; }
};

/// Lowers one image [C,H,W] to a patch matrix [patch_size, oh*ow].
tensor im2col(const tensor& image, const conv2d_spec& spec);

/// Adjoint of im2col: accumulates patch-matrix gradients back to [C,H,W].
tensor col2im(const tensor& columns, const conv2d_spec& spec, std::size_t in_h,
              std::size_t in_w);

/// Whole-batch lowering: writes the patch matrix [patch_size, batch*oh*ow]
/// of `batch` images (contiguous [C,H,W] blocks at `input`) into `dst`
/// (size patch_size * batch*oh*ow). Column n*oh*ow + oy*ow + ox holds the
/// patch of image n at output position (oy, ox).
void im2col_batch(const float* input, std::size_t batch, std::size_t in_h, std::size_t in_w,
                  const conv2d_spec& spec, float* dst);

/// Adjoint of im2col_batch: ACCUMULATES (+=) the patch-matrix gradients in
/// `columns` [patch_size, batch*oh*ow] back onto `batch` images at `dst`.
void col2im_batch(const float* columns, std::size_t batch, std::size_t in_h, std::size_t in_w,
                  const conv2d_spec& spec, float* dst);

/// Byte budget for the workspace scratch one lowered conv chunk holds at
/// once (default 64 MiB): patch matrix + lowered output in forward, plus
/// the column gradient in backward. conv2d splits batches that would
/// exceed it into equal image chunks. Exposed for tests (exercising the
/// chunked path on small shapes) and for memory-constrained deployments;
/// returns the previous value. The chunk split depends only on shapes and
/// this budget, never on data.
std::size_t set_conv_lowering_budget_bytes(std::size_t bytes);

/// Current lowering budget in bytes.
std::size_t conv_lowering_budget_bytes();

/// conv2d forward over a batch.
/// input  [N, C, H, W], weight [out_c, in_c, kh, kw], bias [out_c] (optional,
/// pass empty tensor to skip) → output [N, out_c, oh, ow].
tensor conv2d_forward(const tensor& input, const tensor& weight, const tensor& bias,
                      const conv2d_spec& spec);

/// Post-ops fused into the conv tail. With a fusion request the bias moves
/// from the output scatter into the GEMM epilogue (row bias per output
/// channel, applied as each lowered tile is stored), and the ReLU — with its
/// optional backward keep-mask — is applied during the scatter copy, the
/// pass that already touches every output element. Both placements execute
/// the exact per-element operation sequence of the unfused passes
/// (bias-add, then z > 0 ? z : 0; keep recorded as !(z <= 0)), so fused
/// results are bit-identical to conv2d_forward + relu at any
/// --gemm-threads, NaN/Inf included.
struct conv_fusion {
    bool relu = false;                  ///< apply ReLU in the scatter tail
    std::uint8_t* relu_keep = nullptr;  ///< optional keep-mask in output (NCHW) layout,
                                        ///< output-numel entries; requires relu
};

/// Fused-tail variant of conv2d_forward (see conv_fusion). Passing nullptr
/// is the plain forward.
tensor conv2d_forward(const tensor& input, const tensor& weight, const tensor& bias,
                      const conv2d_spec& spec, const conv_fusion* fusion);

// ---- grouped conv forward (multi-mask evaluation) ---------------------------
//
// The batched fleet evaluator runs K fault-masked weight variants through
// the same conv geometry in one lowering pass. Both entry points return a
// variant-stacked [G*N, out_c, oh, ow] tensor (variant g owns image rows
// [g*N, (g+1)*N)), each block bit-identical to conv2d_forward with that
// variant's weight — under one documented caveat: patch rows whose kernel
// tap is out of bounds for EVERY output position (the all-padding rows a
// 1x1-spatial layer has 8 of 9) are skipped. Their lowered activations are
// exact zeros, so skipping them cannot change any finite-weight result
// (see gemm_k_subset); weights containing Inf/NaN would lose their
// NaN-poisoning of those rows. The evaluator only ever runs pretrained ⊙
// mask weights, which are finite.

/// Patch rows of the lowered matrix with at least one in-bounds tap —
/// ascending; equals the full [0, patch_size) range when no tap is padded
/// out everywhere. Pure geometry (shapes only), so chunking/grouping stays
/// deterministic.
std::vector<std::size_t> conv_active_patch_rows(const conv2d_spec& spec, std::size_t in_h,
                                                std::size_t in_w);

/// Row-subset whole-batch lowering: like im2col_batch but emits only the
/// listed patch rows, compacted; dst is [nrows, batch*oh*ow].
void im2col_batch_rows(const float* input, std::size_t batch, std::size_t in_h,
                       std::size_t in_w, const conv2d_spec& spec, const std::size_t* rows,
                       std::size_t nrows, float* dst);

/// "Apply K weight variants × one input batch": lowers `input` [N,C,H,W]
/// once and multiplies every weights[g] ([out_c,in_c,kh,kw]) against the
/// shared packed patch panels. `fuse_relu` applies the activation during
/// the scatter tail (inference-only fusion: no keep-mask) — bit-identical
/// to the separate relu pass.
tensor conv2d_forward_fanout(const tensor& input, const std::vector<const tensor*>& weights,
                             const tensor& bias, const conv2d_spec& spec,
                             bool fuse_relu = false);

/// Grouped conv forward over an already variant-stacked batch
/// [G*N, C, H, W]: image block g is convolved with weights[g]; lowering,
/// output scatter, and bias run once over the stacked batch. Same optional
/// ReLU fusion as conv2d_forward_fanout.
tensor conv2d_forward_grouped(const tensor& input, std::size_t groups,
                              const std::vector<const tensor*>& weights, const tensor& bias,
                              const conv2d_spec& spec, bool fuse_relu = false);

// ---- grouped conv training drivers (grouped_fat_trainer) --------------------
//
// The grouped TRAINING loop advances K divergent variants in lockstep, so
// unlike the evaluation drivers above both the weights AND the biases differ
// per variant, and the backward pass must write per-variant parameter
// gradients. The same finite-operand caveat applies: the active-row skip is
// byte-identical to the serial layer path only for finite weights (forward)
// and finite upstream gradients (dW); the grouped trainer guards both with
// loud non-finite checks and falls back to the serial path.

/// Training-mode grouped conv forward over a variant-stacked batch
/// [G*N, C, H, W]: block g is convolved with weights[g] and biases[g], the
/// bias always folded into the GEMM epilogue (the fused-layer law of
/// conv2d_layer::forward, bit-identical to the unfused scatter placement).
/// With `relu_keep` non-null the ReLU fuses into the scatter tail and the
/// keep-mask is recorded in stacked NCHW layout (output-numel entries) for
/// relu_keep_backward — the exact semantics of conv2d_layer::
/// forward_fused_relu per variant block.
tensor conv2d_forward_grouped_vb(const tensor& input, std::size_t groups,
                                 const std::vector<const tensor*>& weights,
                                 const std::vector<const tensor*>& biases,
                                 const conv2d_spec& spec, std::uint8_t* relu_keep);

/// Row-subset adjoint: like col2im_batch but `columns` is the compact
/// [nrows, batch*oh*ow] matrix holding only the listed patch rows
/// (strictly ascending). Skipped rows are the all-padding taps, whose
/// serial col2im contribution is zero work (every tap lands out of bounds),
/// so each input pixel's += chain is byte-identical to the full adjoint —
/// unconditionally, for any gradient values.
void col2im_batch_rows(const float* columns, std::size_t batch, std::size_t in_h,
                       std::size_t in_w, const conv2d_spec& spec, const std::size_t* rows,
                       std::size_t nrows, float* dst);

/// Grouped conv backward over variant-stacked tensors: input/grad_output
/// are [G*N, ...] with block g belonging to variant g; grad_weights[g]/
/// grad_biases[g] receive block g's parameter gradients. Each block runs
/// the exact serial conv2d_backward_acc chunk sequence (batch = N), so
/// per-variant results are byte-identical to the layer path at any
/// --gemm-threads. REQUIRES zeroed grad_weights (the active-row dW skip
/// writes compacted results back by assignment) and finite grad_output
/// (see gemm_k_subset); grad_biases and grad_input accumulate as usual.
void conv2d_backward_grouped(const tensor& input, std::size_t groups,
                             const std::vector<const tensor*>& weights,
                             const tensor& grad_output, const conv2d_spec& spec,
                             tensor& grad_input,
                             const std::vector<tensor*>& grad_weights,
                             const std::vector<tensor*>& grad_biases);

/// Gradients of conv2d.
struct conv2d_grads {
    tensor grad_input;   ///< [N, C, H, W]
    tensor grad_weight;  ///< [out_c, in_c, kh, kw]
    tensor grad_bias;    ///< [out_c]
};

/// conv2d backward over a batch given upstream gradient [N, out_c, oh, ow].
conv2d_grads conv2d_backward(const tensor& input, const tensor& weight,
                             const tensor& grad_output, const conv2d_spec& spec);

/// Accumulating conv2d backward: adds this batch's gradients onto the
/// provided tensors (grad_input [N,C,H,W], grad_weight [O,C,kh,kw],
/// grad_bias [O]) — the layer path, which writes parameter gradients in
/// place instead of materializing temporaries.
void conv2d_backward_acc(const tensor& input, const tensor& weight, const tensor& grad_output,
                         const conv2d_spec& spec, tensor& grad_input, tensor& grad_weight,
                         tensor& grad_bias);

/// 2x2-style max pooling geometry.
struct pool2d_spec {
    std::size_t kernel = 2;
    std::size_t stride = 2;
};

/// Max-pool forward; also returns the flat argmax index per output element
/// for the backward pass.
struct pool2d_result {
    tensor output;                      ///< [N, C, oh, ow]
    std::vector<std::size_t> argmax;    ///< flat input index per output element
};

/// Max-pool over a batch [N, C, H, W]; spatial dims must tile exactly.
pool2d_result max_pool2d_forward(const tensor& input, const pool2d_spec& spec);

/// Max-pool backward: routes each output gradient to its argmax location.
tensor max_pool2d_backward(const tensor& grad_output, const std::vector<std::size_t>& argmax,
                           const shape_t& input_shape);

/// Global average pooling: [N, C, H, W] → [N, C].
tensor global_avg_pool_forward(const tensor& input);

/// Backward of global average pooling.
tensor global_avg_pool_backward(const tensor& grad_output, const shape_t& input_shape);

}  // namespace reduce
