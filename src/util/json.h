// Minimal JSON document model with parser and serializer.
//
// Used to persist human-inspectable artifacts: fault maps, resilience tables,
// and experiment reports. Supports the full JSON value grammar except for
// \uXXXX escapes beyond the ASCII range (sufficient for this project's
// machine-generated documents).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace reduce {

class json_value;

/// Ordered object representation: preserves insertion order so serialized
/// documents are stable and diff-friendly.
class json_object {
public:
    /// Inserts or overwrites a key.
    void set(const std::string& key, json_value value);

    /// True when the key exists.
    bool contains(const std::string& key) const;

    /// Access by key; throws io_error when missing.
    const json_value& at(const std::string& key) const;

    /// Keys in insertion order.
    const std::vector<std::string>& keys() const { return order_; }

    /// Number of members.
    std::size_t size() const { return order_.size(); }

    /// Deep equality, sensitive to insertion order (two objects with the
    /// same members in different order are *not* equal — matches the
    /// serializer, so a == b iff a.dump() == b.dump() for finite numbers).
    friend bool operator==(const json_object& a, const json_object& b);
    friend bool operator!=(const json_object& a, const json_object& b) { return !(a == b); }

private:
    std::vector<std::string> order_;
    std::map<std::string, std::shared_ptr<json_value>> members_;
};

using json_array = std::vector<json_value>;

/// A JSON value: null, bool, number (double), string, array, or object.
class json_value {
public:
    json_value() : data_(nullptr) {}
    json_value(std::nullptr_t) : data_(nullptr) {}
    json_value(bool b) : data_(b) {}
    json_value(double d) : data_(d) {}
    json_value(int i) : data_(static_cast<double>(i)) {}
    json_value(std::int64_t i) : data_(static_cast<double>(i)) {}
    json_value(std::size_t i) : data_(static_cast<double>(i)) {}
    json_value(const char* s) : data_(std::string(s)) {}
    json_value(std::string s) : data_(std::move(s)) {}
    json_value(json_array a) : data_(std::move(a)) {}
    json_value(json_object o) : data_(std::move(o)) {}

    bool is_null() const { return std::holds_alternative<std::nullptr_t>(data_); }
    bool is_bool() const { return std::holds_alternative<bool>(data_); }
    bool is_number() const { return std::holds_alternative<double>(data_); }
    bool is_string() const { return std::holds_alternative<std::string>(data_); }
    bool is_array() const { return std::holds_alternative<json_array>(data_); }
    bool is_object() const { return std::holds_alternative<json_object>(data_); }

    /// Typed accessors; each throws io_error when the value has another type.
    bool as_bool() const;
    double as_number() const;
    std::int64_t as_int() const;
    const std::string& as_string() const;
    const json_array& as_array() const;
    const json_object& as_object() const;

    /// Serializes; indent < 0 → compact single line, otherwise pretty-printed
    /// with the given indent width.
    std::string dump(int indent = -1) const;

    /// Deep structural equality (numbers by ==, objects insertion-order
    /// sensitive). Used to compare persisted artifacts such as merged shard
    /// tables against single-shot sweeps.
    friend bool operator==(const json_value& a, const json_value& b);
    friend bool operator!=(const json_value& a, const json_value& b) { return !(a == b); }

private:
    void dump_to(std::string& out, int indent, int depth) const;

    std::variant<std::nullptr_t, bool, double, std::string, json_array, json_object> data_;
};

/// Parses a JSON document; throws io_error with position info on malformed
/// input.
json_value json_parse(const std::string& text);

/// Reads and parses a JSON file; throws io_error on I/O or parse failure.
json_value json_load_file(const std::string& path);

/// Serializes to a file (pretty-printed); throws io_error on I/O failure.
void json_save_file(const std::string& path, const json_value& value);

}  // namespace reduce
