#include "nn/layers.h"

#include "nn/schedule.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "util/error.h"

namespace reduce {

linear::linear(std::size_t in_features, std::size_t out_features, rng& gen)
    : in_features_(in_features), out_features_(out_features) {
    REDUCE_CHECK(in_features > 0 && out_features > 0,
                 "linear layer dims must be positive: " << in_features << "x" << out_features);
    weight_.name = "weight";
    weight_.value = tensor({out_features, in_features});
    weight_.grad = tensor({out_features, in_features});
    he_normal(weight_.value, in_features, gen);
    bias_.name = "bias";
    bias_.value = tensor({out_features});
    bias_.grad = tensor({out_features});
}

tensor linear::forward(const tensor& input) {
    REDUCE_CHECK(input.dim() == 2 && input.extent(1) == in_features_,
                 "linear expects [N," << in_features_ << "], got " << input.describe());
    cached_input_ = input;
    if (layer_fusion_enabled()) {
        // Bias folded into the GEMM epilogue; bit-identical to the unfused
        // matmul + row-bias passes below.
        return matmul_nt_bias(input, weight_.value, bias_.value);
    }
    tensor output = matmul_nt(input, weight_.value);  // [N, out]
    add_row_bias_inplace(output, bias_.value);
    return output;
}

tensor linear::forward_fused_relu(const tensor& input, std::vector<std::uint8_t>& relu_keep) {
    REDUCE_CHECK(input.dim() == 2 && input.extent(1) == in_features_,
                 "linear expects [N," << in_features_ << "], got " << input.describe());
    cached_input_ = input;
    relu_keep.resize(input.extent(0) * out_features_);
    return matmul_nt_bias(input, weight_.value, bias_.value, /*fuse_relu=*/true,
                          relu_keep.data());
}

tensor linear::backward(const tensor& grad_output) {
    REDUCE_CHECK(grad_output.dim() == 2 && grad_output.extent(1) == out_features_,
                 "linear backward expects [N," << out_features_ << "], got "
                                               << grad_output.describe());
    REDUCE_CHECK(cached_input_.numel() > 0, "linear backward before forward");
    // dW += dYᵀ · X;  db += column sums of dY;  dX = dY · W. The accumulating
    // forms write the parameter gradients in place (no temporaries).
    matmul_tn_acc(grad_output, cached_input_, weight_.grad);
    column_sums_acc(grad_output, bias_.grad);
    return matmul(grad_output, weight_.value);
}

std::vector<parameter*> linear::parameters() { return {&weight_, &bias_}; }

std::unique_ptr<module> linear::clone() const {
    // Construct through the public ctor (the throwaway init is overwritten by
    // the state copy below, masks included).
    rng scratch(0);
    auto copy = std::make_unique<linear>(in_features_, out_features_, scratch);
    copy->weight_ = weight_;
    copy->bias_ = bias_;
    copy->training_ = training_;
    return copy;
}

tensor relu_layer::forward(const tensor& input) {
    cached_input_ = input;
    return relu(input);
}

tensor relu_layer::backward(const tensor& grad_output) {
    REDUCE_CHECK(cached_input_.numel() > 0, "relu backward before forward");
    return relu_backward(grad_output, cached_input_);
}

std::unique_ptr<module> relu_layer::clone() const {
    auto copy = std::make_unique<relu_layer>();
    copy->training_ = training_;
    return copy;
}

tensor flatten::forward(const tensor& input) {
    REDUCE_CHECK(input.dim() >= 2, "flatten expects at least rank-2, got " << input.describe());
    cached_shape_ = input.shape();
    const std::size_t batch = input.extent(0);
    return input.reshaped({batch, input.numel() / batch});
}

tensor flatten::backward(const tensor& grad_output) {
    REDUCE_CHECK(!cached_shape_.empty(), "flatten backward before forward");
    return grad_output.reshaped(cached_shape_);
}

std::unique_ptr<module> flatten::clone() const {
    auto copy = std::make_unique<flatten>();
    copy->training_ = training_;
    return copy;
}

dropout::dropout(double p, std::uint64_t seed) : p_(p), gen_(seed) {
    REDUCE_CHECK(p >= 0.0 && p < 1.0, "dropout probability must be in [0,1), got " << p);
}

tensor dropout::forward(const tensor& input) {
    if (!training_ || p_ == 0.0) {
        kept_scale_ = tensor();
        return input;
    }
    kept_scale_ = tensor(input.shape());
    const float keep_scale = static_cast<float>(1.0 / (1.0 - p_));
    float* mask = kept_scale_.raw();
    for (std::size_t i = 0; i < kept_scale_.numel(); ++i) {
        mask[i] = gen_.bernoulli(p_) ? 0.0f : keep_scale;
    }
    return mul(input, kept_scale_);
}

tensor dropout::backward(const tensor& grad_output) {
    if (kept_scale_.empty()) { return grad_output; }
    return mul(grad_output, kept_scale_);
}

std::unique_ptr<module> dropout::clone() const {
    auto copy = std::make_unique<dropout>(p_, 0);
    copy->gen_ = gen_;  // clone continues the original's random stream
    copy->training_ = training_;
    return copy;
}

}  // namespace reduce
