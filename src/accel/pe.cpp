#include "accel/pe.h"

#include "util/error.h"

namespace reduce {

bool is_faulty(pe_fault fault) { return fault != pe_fault::healthy; }

std::string to_string(pe_fault fault) {
    switch (fault) {
        case pe_fault::healthy: return "healthy";
        case pe_fault::bypassed: return "bypassed";
        case pe_fault::stuck_weight_zero: return "stuck_weight_zero";
        case pe_fault::stuck_weight_max: return "stuck_weight_max";
        case pe_fault::stuck_weight_min: return "stuck_weight_min";
    }
    throw invalid_argument_error("unknown pe_fault value");
}

pe_fault pe_fault_from_string(const std::string& name) {
    if (name == "healthy") { return pe_fault::healthy; }
    if (name == "bypassed") { return pe_fault::bypassed; }
    if (name == "stuck_weight_zero") { return pe_fault::stuck_weight_zero; }
    if (name == "stuck_weight_max") { return pe_fault::stuck_weight_max; }
    if (name == "stuck_weight_min") { return pe_fault::stuck_weight_min; }
    throw invalid_argument_error("unknown pe_fault name: " + name);
}

float pe_mac(pe_fault fault, float psum_in, float weight, float activation, float w_max) {
    switch (fault) {
        case pe_fault::healthy: return psum_in + weight * activation;
        case pe_fault::bypassed: return psum_in;
        case pe_fault::stuck_weight_zero: return psum_in;
        case pe_fault::stuck_weight_max: return psum_in + w_max * activation;
        case pe_fault::stuck_weight_min: return psum_in - w_max * activation;
    }
    throw invalid_argument_error("unknown pe_fault value");
}

}  // namespace reduce
