#include "util/cli.h"

#include <climits>
#include <cstdlib>
#include <sstream>

#include "util/error.h"

namespace reduce {

cli_args::cli_args(int argc, const char* const* argv) {
    REDUCE_CHECK(argc >= 1, "argc must be at least 1");
    program_ = argv[0];
    for (int i = 1; i < argc; ++i) {
        const std::string token = argv[i];
        if (token.rfind("--", 0) != 0) {
            positional_.push_back(token);
            continue;
        }
        const std::string body = token.substr(2);
        REDUCE_CHECK(!body.empty(), "bare '--' is not a valid option");
        const auto eq = body.find('=');
        if (eq != std::string::npos) {
            options_[body.substr(0, eq)] = body.substr(eq + 1);
            continue;
        }
        // `--key value` if the next token is not itself an option.
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
            options_[body] = argv[i + 1];
            ++i;
        } else {
            options_[body] = "";
        }
    }
}

bool cli_args::has(const std::string& name) const { return options_.count(name) > 0; }

std::string cli_args::get(const std::string& name, const std::string& fallback) const {
    const auto it = options_.find(name);
    return it == options_.end() ? fallback : it->second;
}

std::int64_t cli_args::get_int(const std::string& name, std::int64_t fallback) const {
    const auto it = options_.find(name);
    if (it == options_.end()) { return fallback; }
    char* end = nullptr;
    const long long value = std::strtoll(it->second.c_str(), &end, 10);
    REDUCE_CHECK(end != nullptr && *end == '\0' && !it->second.empty(),
                 "option --" << name << " expects an integer, got '" << it->second << "'");
    return value;
}

double cli_args::get_double(const std::string& name, double fallback) const {
    const auto it = options_.find(name);
    if (it == options_.end()) { return fallback; }
    char* end = nullptr;
    const double value = std::strtod(it->second.c_str(), &end);
    REDUCE_CHECK(end != nullptr && *end == '\0' && !it->second.empty(),
                 "option --" << name << " expects a number, got '" << it->second << "'");
    return value;
}

bool cli_args::get_flag(const std::string& name) const {
    const auto it = options_.find(name);
    if (it == options_.end()) { return false; }
    const std::string& v = it->second;
    return v.empty() || v == "1" || v == "true" || v == "yes" || v == "on";
}

std::vector<double> cli_args::get_double_list(const std::string& name,
                                              const std::vector<double>& fallback) const {
    const auto it = options_.find(name);
    if (it == options_.end()) { return fallback; }
    std::vector<double> values;
    std::stringstream ss(it->second);
    std::string item;
    while (std::getline(ss, item, ',')) {
        char* end = nullptr;
        const double value = std::strtod(item.c_str(), &end);
        REDUCE_CHECK(end != nullptr && *end == '\0' && !item.empty(),
                     "option --" << name << " has a non-numeric element '" << item << "'");
        values.push_back(value);
    }
    REDUCE_CHECK(!values.empty(), "option --" << name << " is an empty list");
    return values;
}

std::vector<std::string> cli_args::get_string_list(
    const std::string& name, const std::vector<std::string>& fallback) const {
    const auto it = options_.find(name);
    if (it == options_.end()) { return fallback; }
    std::vector<std::string> values;
    std::stringstream ss(it->second);
    std::string item;
    while (std::getline(ss, item, ',')) {
        REDUCE_CHECK(!item.empty(), "option --" << name << " has an empty element");
        values.push_back(item);
    }
    REDUCE_CHECK(!values.empty(), "option --" << name << " is an empty list");
    return values;
}

shard_spec cli_args::get_shard(const std::string& name) const {
    const auto it = options_.find(name);
    if (it == options_.end()) { return {}; }
    const std::string& spec = it->second;
    const auto slash = spec.find('/');
    REDUCE_CHECK(slash != std::string::npos && slash > 0 && slash + 1 < spec.size(),
                 "option --" << name << " expects I/N (e.g. 0/4), got '" << spec << "'");
    const auto parse_count = [&](const std::string& text) {
        // Digits only: strtoull would silently wrap "-2" to 2^64-2.
        REDUCE_CHECK(!text.empty() && text.find_first_not_of("0123456789") == std::string::npos,
                     "option --" << name << " has a non-numeric shard component '" << text
                                 << "'");
        char* end = nullptr;
        const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
        REDUCE_CHECK(end != nullptr && *end == '\0' && value != ULLONG_MAX,
                     "option --" << name << " shard component '" << text
                                 << "' is out of range");
        return static_cast<std::size_t>(value);
    };
    shard_spec shard;
    shard.index = parse_count(spec.substr(0, slash));
    shard.count = parse_count(spec.substr(slash + 1));
    REDUCE_CHECK(shard.count >= 1, "option --" << name << ": shard count must be >= 1");
    REDUCE_CHECK(shard.index < shard.count, "option --" << name << ": shard index "
                                                        << shard.index
                                                        << " out of range for " << shard.count
                                                        << " shard(s)");
    return shard;
}

}  // namespace reduce
