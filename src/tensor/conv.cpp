#include "tensor/conv.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <limits>

#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/workspace.h"
#include "util/error.h"

namespace reduce {

std::size_t conv2d_spec::out_h(std::size_t in_h) const {
    REDUCE_CHECK(in_h + 2 * padding >= kernel_h,
                 "conv2d kernel_h " << kernel_h << " larger than padded input " << in_h);
    REDUCE_CHECK(stride > 0, "conv2d stride must be positive");
    return (in_h + 2 * padding - kernel_h) / stride + 1;
}

std::size_t conv2d_spec::out_w(std::size_t in_w) const {
    REDUCE_CHECK(in_w + 2 * padding >= kernel_w,
                 "conv2d kernel_w " << kernel_w << " larger than padded input " << in_w);
    REDUCE_CHECK(stride > 0, "conv2d stride must be positive");
    return (in_w + 2 * padding - kernel_w) / stride + 1;
}

namespace {

// Lowering budget: cap on the workspace slabs one chunk holds at once
// (patch matrix + lowered output, plus the column gradient in backward).
// Only chunk GEOMETRY depends on it, so any budget yields the same forward
// numbers; the backward dW/db accumulation order follows the chunk split,
// which is itself a pure function of shapes and this budget.
std::atomic<std::size_t> lowering_budget_bytes{64u << 20};

/// Images per lowered chunk: as many as the budget allows, at least 1, at
/// most the batch. `slab_rows` is the total height of the workspace slabs
/// held simultaneously per chunk, in patch-matrix-row units — forward
/// leases columns + lowered output (patch + out_c rows of `plane` floats
/// per image); backward additionally holds the column gradient
/// (2*patch + out_c), so its chunks are smaller under the same budget.
std::size_t images_per_chunk(std::size_t slab_rows, std::size_t plane, std::size_t batch) {
    const std::size_t per_image = slab_rows * plane * sizeof(float);
    if (per_image == 0) { return std::max<std::size_t>(batch, 1); }
    const std::size_t fit = lowering_budget_bytes.load(std::memory_order_relaxed) / per_image;
    return std::clamp<std::size_t>(fit, 1, std::max<std::size_t>(batch, 1));
}

}  // namespace

std::size_t set_conv_lowering_budget_bytes(std::size_t bytes) {
    REDUCE_CHECK(bytes > 0, "conv lowering budget must be positive");
    return lowering_budget_bytes.exchange(bytes, std::memory_order_relaxed);
}

std::size_t conv_lowering_budget_bytes() {
    return lowering_budget_bytes.load(std::memory_order_relaxed);
}

void im2col_batch(const float* input, std::size_t batch, std::size_t in_h, std::size_t in_w,
                  const conv2d_spec& spec, float* dst) {
    const std::size_t oh = spec.out_h(in_h);
    const std::size_t ow = spec.out_w(in_w);
    const std::size_t out_cols = oh * ow;
    const std::size_t total_cols = batch * out_cols;
    const std::size_t image_elems = spec.in_channels * in_h * in_w;
    std::size_t patch_row = 0;
    for (std::size_t c = 0; c < spec.in_channels; ++c) {
        for (std::size_t kh = 0; kh < spec.kernel_h; ++kh) {
            for (std::size_t kw = 0; kw < spec.kernel_w; ++kw, ++patch_row) {
                float* prow = dst + patch_row * total_cols;
                for (std::size_t n = 0; n < batch; ++n) {
                    const float* src = input + n * image_elems;
                    float* drow = prow + n * out_cols;
                    for (std::size_t oy = 0; oy < oh; ++oy) {
                        // Signed arithmetic for the padded coordinate.
                        const std::ptrdiff_t iy =
                            static_cast<std::ptrdiff_t>(oy * spec.stride + kh) -
                            static_cast<std::ptrdiff_t>(spec.padding);
                        if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(in_h)) {
                            std::memset(drow + oy * ow, 0, ow * sizeof(float));
                            continue;
                        }
                        const float* srow =
                            src + (c * in_h + static_cast<std::size_t>(iy)) * in_w;
                        for (std::size_t ox = 0; ox < ow; ++ox) {
                            const std::ptrdiff_t ix =
                                static_cast<std::ptrdiff_t>(ox * spec.stride + kw) -
                                static_cast<std::ptrdiff_t>(spec.padding);
                            drow[oy * ow + ox] =
                                (ix >= 0 && ix < static_cast<std::ptrdiff_t>(in_w))
                                    ? srow[static_cast<std::size_t>(ix)]
                                    : 0.0f;
                        }
                    }
                }
            }
        }
    }
}

void col2im_batch(const float* columns, std::size_t batch, std::size_t in_h, std::size_t in_w,
                  const conv2d_spec& spec, float* dst) {
    const std::size_t oh = spec.out_h(in_h);
    const std::size_t ow = spec.out_w(in_w);
    const std::size_t out_cols = oh * ow;
    const std::size_t total_cols = batch * out_cols;
    const std::size_t image_elems = spec.in_channels * in_h * in_w;
    std::size_t patch_row = 0;
    for (std::size_t c = 0; c < spec.in_channels; ++c) {
        for (std::size_t kh = 0; kh < spec.kernel_h; ++kh) {
            for (std::size_t kw = 0; kw < spec.kernel_w; ++kw, ++patch_row) {
                const float* prow = columns + patch_row * total_cols;
                for (std::size_t n = 0; n < batch; ++n) {
                    float* img = dst + n * image_elems;
                    const float* srow = prow + n * out_cols;
                    for (std::size_t oy = 0; oy < oh; ++oy) {
                        const std::ptrdiff_t iy =
                            static_cast<std::ptrdiff_t>(oy * spec.stride + kh) -
                            static_cast<std::ptrdiff_t>(spec.padding);
                        if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(in_h)) { continue; }
                        float* irow = img + (c * in_h + static_cast<std::size_t>(iy)) * in_w;
                        for (std::size_t ox = 0; ox < ow; ++ox) {
                            const std::ptrdiff_t ix =
                                static_cast<std::ptrdiff_t>(ox * spec.stride + kw) -
                                static_cast<std::ptrdiff_t>(spec.padding);
                            if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(in_w)) {
                                continue;
                            }
                            irow[static_cast<std::size_t>(ix)] += srow[oy * ow + ox];
                        }
                    }
                }
            }
        }
    }
}

tensor im2col(const tensor& image, const conv2d_spec& spec) {
    REDUCE_CHECK(image.dim() == 3, "im2col expects [C,H,W], got " << image.describe());
    REDUCE_CHECK(image.extent(0) == spec.in_channels,
                 "im2col channel mismatch: image has " << image.extent(0)
                                                       << ", spec expects "
                                                       << spec.in_channels);
    const std::size_t in_h = image.extent(1);
    const std::size_t in_w = image.extent(2);
    tensor columns({spec.patch_size(), spec.out_h(in_h) * spec.out_w(in_w)});
    im2col_batch(image.raw(), 1, in_h, in_w, spec, columns.raw());
    return columns;
}

tensor col2im(const tensor& columns, const conv2d_spec& spec, std::size_t in_h,
              std::size_t in_w) {
    REDUCE_CHECK(columns.dim() == 2, "col2im expects rank-2 input, got " << columns.describe());
    const std::size_t oh = spec.out_h(in_h);
    const std::size_t ow = spec.out_w(in_w);
    REDUCE_CHECK(columns.extent(0) == spec.patch_size() && columns.extent(1) == oh * ow,
                 "col2im shape mismatch: " << columns.describe());
    tensor image({spec.in_channels, in_h, in_w});
    col2im_batch(columns.raw(), 1, in_h, in_w, spec, image.raw());
    return image;
}

namespace {

void check_conv_inputs(const tensor& input, const tensor& weight, const conv2d_spec& spec) {
    REDUCE_CHECK(input.dim() == 4, "conv2d expects input [N,C,H,W], got " << input.describe());
    REDUCE_CHECK(weight.dim() == 4,
                 "conv2d expects weight [O,C,kh,kw], got " << weight.describe());
    REDUCE_CHECK(input.extent(1) == spec.in_channels,
                 "conv2d input channels " << input.extent(1) << " != spec " << spec.in_channels);
    REDUCE_CHECK(weight.extent(0) == spec.out_channels && weight.extent(1) == spec.in_channels &&
                     weight.extent(2) == spec.kernel_h && weight.extent(3) == spec.kernel_w,
                 "conv2d weight " << weight.describe() << " does not match spec");
}

}  // namespace

tensor conv2d_forward(const tensor& input, const tensor& weight, const tensor& bias,
                      const conv2d_spec& spec) {
    check_conv_inputs(input, weight, spec);
    const std::size_t batch = input.extent(0);
    const std::size_t in_h = input.extent(2);
    const std::size_t in_w = input.extent(3);
    const std::size_t oh = spec.out_h(in_h);
    const std::size_t ow = spec.out_w(in_w);
    const bool has_bias = !bias.empty();
    if (has_bias) {
        REDUCE_CHECK(bias.dim() == 1 && bias.extent(0) == spec.out_channels,
                     "conv2d bias " << bias.describe() << " does not match out_channels");
    }

    const std::size_t patch = spec.patch_size();
    const std::size_t plane = oh * ow;
    const std::size_t image_elems = spec.in_channels * in_h * in_w;
    tensor output({batch, spec.out_channels, oh, ow});
    float* out_ptr = output.raw();
    // The weight tensor [O, C, kh, kw] IS the lowered [O, patch] matrix —
    // row-major contiguity makes the reshape free (the seed copied it).
    const float* weight2d = weight.raw();

    workspace& ws = workspace::local();
    const std::size_t chunk = images_per_chunk(patch + spec.out_channels, plane, batch);
    for (std::size_t n0 = 0; n0 < batch; n0 += chunk) {
        const std::size_t nb = std::min(chunk, batch - n0);
        const std::size_t cols = nb * plane;
        workspace::buffer colbuf = ws.acquire(patch * cols);
        im2col_batch(input.raw() + n0 * image_elems, nb, in_h, in_w, spec, colbuf.data());
        workspace::buffer outbuf = ws.acquire(spec.out_channels * cols);
        gemm_nn(spec.out_channels, cols, patch, weight2d, patch, colbuf.data(), cols,
                outbuf.data(), cols, /*accumulate=*/false, ws);
        // Scatter [O, nb*plane] back to [N, O, plane] layout, adding bias.
        for (std::size_t oc = 0; oc < spec.out_channels; ++oc) {
            const float b = has_bias ? bias[oc] : 0.0f;
            const float* srow = outbuf.data() + oc * cols;
            for (std::size_t n = 0; n < nb; ++n) {
                float* dst = out_ptr + ((n0 + n) * spec.out_channels + oc) * plane;
                const float* src = srow + n * plane;
                for (std::size_t i = 0; i < plane; ++i) { dst[i] = src[i] + b; }
            }
        }
    }
    return output;
}

void conv2d_backward_acc(const tensor& input, const tensor& weight, const tensor& grad_output,
                         const conv2d_spec& spec, tensor& grad_input, tensor& grad_weight,
                         tensor& grad_bias) {
    check_conv_inputs(input, weight, spec);
    const std::size_t batch = input.extent(0);
    const std::size_t in_h = input.extent(2);
    const std::size_t in_w = input.extent(3);
    const std::size_t oh = spec.out_h(in_h);
    const std::size_t ow = spec.out_w(in_w);
    REDUCE_CHECK(grad_output.dim() == 4 && grad_output.extent(0) == batch &&
                     grad_output.extent(1) == spec.out_channels && grad_output.extent(2) == oh &&
                     grad_output.extent(3) == ow,
                 "conv2d grad_output " << grad_output.describe() << " does not match geometry");
    REDUCE_CHECK(grad_input.shape() == input.shape(),
                 "conv2d grad_input " << grad_input.describe() << " does not match input");
    REDUCE_CHECK(grad_weight.shape() == weight.shape(),
                 "conv2d grad_weight " << grad_weight.describe() << " does not match weight");
    REDUCE_CHECK(grad_bias.dim() == 1 && grad_bias.extent(0) == spec.out_channels,
                 "conv2d grad_bias " << grad_bias.describe() << " does not match out_channels");

    const std::size_t patch = spec.patch_size();
    const std::size_t plane = oh * ow;
    const std::size_t image_elems = spec.in_channels * in_h * in_w;
    const float* weight2d = weight.raw();  // [O, patch] view, reshape-free
    float* gw = grad_weight.raw();         // [O, patch] view
    float* gb = grad_bias.raw();
    float* gin = grad_input.raw();

    workspace& ws = workspace::local();
    // Three slabs live at once here (columns, lowered dY, column gradient).
    const std::size_t chunk = images_per_chunk(2 * patch + spec.out_channels, plane, batch);
    for (std::size_t n0 = 0; n0 < batch; n0 += chunk) {
        const std::size_t nb = std::min(chunk, batch - n0);
        const std::size_t cols = nb * plane;
        workspace::buffer colbuf = ws.acquire(patch * cols);
        im2col_batch(input.raw() + n0 * image_elems, nb, in_h, in_w, spec, colbuf.data());

        // Gather dY from [N, O, plane] into the lowered [O, nb*plane] layout.
        workspace::buffer gobuf = ws.acquire(spec.out_channels * cols);
        for (std::size_t oc = 0; oc < spec.out_channels; ++oc) {
            float* drow = gobuf.data() + oc * cols;
            for (std::size_t n = 0; n < nb; ++n) {
                const float* src =
                    grad_output.raw() + ((n0 + n) * spec.out_channels + oc) * plane;
                std::memcpy(drow + n * plane, src, plane * sizeof(float));
            }
        }

        // dW += dY · colsᵀ — one GEMM for the whole chunk, straight into
        // the parameter gradient.
        gemm_nt(spec.out_channels, patch, cols, gobuf.data(), cols, colbuf.data(), cols, gw,
                patch, /*accumulate=*/true, ws);

        // db += row sums of dY.
        for (std::size_t oc = 0; oc < spec.out_channels; ++oc) {
            const float* row = gobuf.data() + oc * cols;
            float acc = 0.0f;
            for (std::size_t i = 0; i < cols; ++i) { acc += row[i]; }
            gb[oc] += acc;
        }

        // dX += col2im(Wᵀ · dY); the column gradient reuses the im2col slab
        // shape, and col2im_batch accumulates in place.
        workspace::buffer gradcols = ws.acquire(patch * cols);
        gemm_tn(patch, cols, spec.out_channels, weight2d, patch, gobuf.data(), cols,
                gradcols.data(), cols, /*accumulate=*/false, ws);
        col2im_batch(gradcols.data(), nb, in_h, in_w, spec, gin + n0 * image_elems);
    }
}

conv2d_grads conv2d_backward(const tensor& input, const tensor& weight,
                             const tensor& grad_output, const conv2d_spec& spec) {
    conv2d_grads grads{tensor(input.shape()), tensor(weight.shape()),
                       tensor({spec.out_channels})};
    conv2d_backward_acc(input, weight, grad_output, spec, grads.grad_input, grads.grad_weight,
                        grads.grad_bias);
    return grads;
}

pool2d_result max_pool2d_forward(const tensor& input, const pool2d_spec& spec) {
    REDUCE_CHECK(input.dim() == 4, "max_pool2d expects [N,C,H,W], got " << input.describe());
    REDUCE_CHECK(spec.kernel > 0 && spec.stride > 0, "pool kernel/stride must be positive");
    const std::size_t batch = input.extent(0);
    const std::size_t channels = input.extent(1);
    const std::size_t in_h = input.extent(2);
    const std::size_t in_w = input.extent(3);
    REDUCE_CHECK(in_h >= spec.kernel && in_w >= spec.kernel,
                 "pool kernel larger than input " << input.describe());
    const std::size_t oh = (in_h - spec.kernel) / spec.stride + 1;
    const std::size_t ow = (in_w - spec.kernel) / spec.stride + 1;

    pool2d_result result{tensor({batch, channels, oh, ow}), {}};
    result.argmax.assign(batch * channels * oh * ow, 0);
    const float* src = input.raw();
    float* dst = result.output.raw();
    std::size_t out_idx = 0;
    for (std::size_t n = 0; n < batch; ++n) {
        for (std::size_t c = 0; c < channels; ++c) {
            const float* plane = src + (n * channels + c) * in_h * in_w;
            for (std::size_t oy = 0; oy < oh; ++oy) {
                for (std::size_t ox = 0; ox < ow; ++ox, ++out_idx) {
                    float best = -std::numeric_limits<float>::infinity();
                    std::size_t best_idx = 0;
                    for (std::size_t ky = 0; ky < spec.kernel; ++ky) {
                        const std::size_t iy = oy * spec.stride + ky;
                        for (std::size_t kx = 0; kx < spec.kernel; ++kx) {
                            const std::size_t ix = ox * spec.stride + kx;
                            const std::size_t flat = iy * in_w + ix;
                            if (plane[flat] > best) {
                                best = plane[flat];
                                best_idx = (n * channels + c) * in_h * in_w + flat;
                            }
                        }
                    }
                    dst[out_idx] = best;
                    result.argmax[out_idx] = best_idx;
                }
            }
        }
    }
    return result;
}

tensor max_pool2d_backward(const tensor& grad_output, const std::vector<std::size_t>& argmax,
                           const shape_t& input_shape) {
    REDUCE_CHECK(grad_output.numel() == argmax.size(),
                 "pool backward: argmax size " << argmax.size() << " != grad elements "
                                               << grad_output.numel());
    tensor grad_input(input_shape);
    // Validate once up front (max element) instead of per scatter: the hot
    // loop below then runs branch-free.
    if (!argmax.empty()) {
        const std::size_t worst = *std::max_element(argmax.begin(), argmax.end());
        REDUCE_CHECK(worst < grad_input.numel(),
                     "pool backward: argmax " << worst << " out of range for "
                                              << grad_input.describe());
    }
    float* dst = grad_input.raw();
    const float* src = grad_output.raw();
    for (std::size_t i = 0; i < argmax.size(); ++i) { dst[argmax[i]] += src[i]; }
    return grad_input;
}

tensor global_avg_pool_forward(const tensor& input) {
    REDUCE_CHECK(input.dim() == 4, "global_avg_pool expects [N,C,H,W], got " << input.describe());
    const std::size_t batch = input.extent(0);
    const std::size_t channels = input.extent(1);
    const std::size_t plane = input.extent(2) * input.extent(3);
    REDUCE_CHECK(plane > 0, "global_avg_pool over empty plane");
    tensor output({batch, channels});
    const float* src = input.raw();
    float* dst = output.raw();
    const float inv = 1.0f / static_cast<float>(plane);
    for (std::size_t nc = 0; nc < batch * channels; ++nc) {
        float acc = 0.0f;
        const float* p = src + nc * plane;
        for (std::size_t i = 0; i < plane; ++i) { acc += p[i]; }
        dst[nc] = acc * inv;
    }
    return output;
}

tensor global_avg_pool_backward(const tensor& grad_output, const shape_t& input_shape) {
    REDUCE_CHECK(input_shape.size() == 4, "global_avg_pool backward expects rank-4 input shape");
    const std::size_t batch = input_shape[0];
    const std::size_t channels = input_shape[1];
    const std::size_t plane = input_shape[2] * input_shape[3];
    REDUCE_CHECK(grad_output.dim() == 2 && grad_output.extent(0) == batch &&
                     grad_output.extent(1) == channels,
                 "global_avg_pool backward grad " << grad_output.describe() << " mismatch");
    tensor grad_input(input_shape);
    const float* src = grad_output.raw();
    float* dst = grad_input.raw();
    const float inv = 1.0f / static_cast<float>(plane);
    for (std::size_t nc = 0; nc < batch * channels; ++nc) {
        const float g = src[nc] * inv;
        float* p = dst + nc * plane;
        for (std::size_t i = 0; i < plane; ++i) { p[i] = g; }
    }
    return grad_input;
}

}  // namespace reduce
