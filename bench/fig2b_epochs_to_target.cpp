// Fig. 2b — Amount of FAT required at each fault rate to reach a given
// accuracy level, with min/mean/max error bars over repeated fault maps.
//
// The paper repeats each point five times and reports min/max error bars;
// the spread is the argument for selecting by MAX (mean under-trains).
//
// The sweep behind this figure is Step 1 of Reduce — the expensive stage —
// so this harness exposes the full sweep engine: parallel workers, shard
// selection for multi-machine runs, the fingerprint-keyed cache, and a
// merge mode that fuses shard tables back into the single-shot result.
//
// Output: CSV on stdout
//   (fault_rate, target_acc, min_epochs, mean_epochs, max_epochs, censored).
// Options:
//   --rates ...      fault-rate grid          (default 0:0.1:0.5)
//   --targets ...    accuracy targets in %    (default 90,91,92)
//   --repeats N      fault maps per rate      (default 5, as the paper)
//   --budget E       epoch budget             (default 6)
//   --paper-scale    finer rate grid (0:0.05:0.5), budget 10
//   --sweep-threads N  sweep worker threads   (default 1; 0 = all cores)
//   --gemm-threads N   intra-op tensor threads per worker (default 1; 0 = all cores)
//   --eval-group K     same-rate cells per grouped epoch-0 eval pass
//                      (default 1; never changes the table, only wall-clock)
//   --shard I/N      run shard I of N cells   (CSV covers the shard only)
//   --cache-dir P    reuse/store the Step-1 table under P
//   --cache-gc       prune the Step-1 cache first: stale-schema entries
//                    always, plus oldest entries beyond --cache-gc-max-mb
//   --save-table P   dump the resilience table JSON to path P
//   --load-tables a,b,...  skip the sweep: merge shard tables from JSON
//                    files (must share config) and report from the result

#include <iostream>

#include "core/resilience.h"
#include "core/workload.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/log.h"
#include "util/stopwatch.h"

using namespace reduce;

int main(int argc, char** argv) {
    try {
        const cli_args args(argc, argv);
        set_log_level(args.get_flag("verbose") ? log_level::info : log_level::warn);
        stopwatch timer;
        maybe_run_cache_gc(args);

        std::vector<double> rates =
            args.get_double_list("rates", {0.0, 0.1, 0.2, 0.3, 0.4, 0.5});
        std::vector<double> targets = args.get_double_list("targets", {90.0, 91.0, 92.0});
        std::size_t repeats = static_cast<std::size_t>(args.get_int("repeats", 5));
        double budget = args.get_double("budget", 6.0);
        if (args.get_flag("paper-scale")) {
            rates = {0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5};
            budget = 10.0;
        }
        const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 20230305));
        sweep_options sweep;
        sweep.threads = static_cast<std::size_t>(args.get_int("sweep-threads", 1));
        sweep.gemm_threads = static_cast<std::size_t>(args.get_int("gemm-threads", 1));
        sweep.eval_group = static_cast<std::size_t>(args.get_int("eval-group", 1));
        const shard_spec shard = args.get_shard("shard");
        sweep.shard_index = shard.index;
        sweep.shard_count = shard.count;

        const auto build_table = [&]() -> resilience_table {
            if (args.has("load-tables")) {
                // Merge mode: fuse shard artifacts without touching the
                // workload — the whole point of sharding across machines.
                std::vector<resilience_table> shards;
                for (const std::string& path : args.get_string_list("load-tables", {})) {
                    shards.push_back(resilience_table::from_json(json_load_file(path)));
                    std::cerr << "[fig2b] loaded shard table " << path << " ("
                              << shards.back().runs().size() << " runs)\n";
                }
                return resilience_table::merge(shards);
            }

            resilience_config cfg;
            cfg.fault_rates = rates;
            cfg.repeats = repeats;
            cfg.max_epochs = budget;
            cfg.eval_grid = make_eval_grid(budget, 1.0, 0.05, 0.25);
            cfg.seed = seed;
            cfg.context = workload_context();
            if (args.has("scenario")) {
                cfg.scenario = parse_scenario(args.get("scenario", ""));
            }

            // A warm cache answers before the workload is even built — no
            // dataset synthesis, no pretraining.
            if (args.has("cache-dir")) {
                const resilience_cache cache(args.get("cache-dir", ""));
                if (std::optional<resilience_table> cached = cache.load(cfg, sweep)) {
                    std::cerr << "[fig2b] Step-1 cache hit: "
                              << cache.path_for(cfg, sweep) << '\n';
                    return std::move(*cached);
                }
            }

            workload w = make_standard_workload();
            std::cerr << "[fig2b] workload ready: clean accuracy "
                      << w.clean_accuracy * 100.0 << "%\n";

            resilience_analyzer analyzer(*w.model, w.pretrained, w.train_data, w.test_data,
                                         w.array, w.trainer_cfg);
            return run_resilience_sweep(analyzer, cfg, sweep, args.get("cache-dir", ""));
        };
        const resilience_table table = build_table();

        if (args.has("save-table")) {
            json_save_file(args.get("save-table", ""), table.to_json());
            std::cerr << "[fig2b] resilience table saved to "
                      << args.get("save-table", "") << '\n';
        }

        csv_table out({"fault_rate", "target_accuracy", "min_epochs", "mean_epochs",
                       "max_epochs", "censored_runs"});
        out.set_precision(4);
        // A shard covers only its subset of the grid, so iterate what the
        // table actually holds rather than the requested rates — and say so
        // in the output: a rate can be present with fewer repeats than the
        // full sweep, making its statistics a shard-local preview.
        if (table.grid_cells() != 0 && table.runs().size() < table.grid_cells()) {
            std::cout << "# WARNING: partial shard table (" << table.runs().size() << " of "
                      << table.grid_cells()
                      << " cells); statistics preview this shard's repeats only — merge "
                         "all shards for the real figure\n";
        }
        for (const double rate : table.fault_rates()) {
            for (const double target_pct : targets) {
                const auto sample = table.epochs_to_target_at(rate, target_pct / 100.0);
                const summary_stats stats = sample.stats();
                out.add_row({rate, target_pct, stats.min, stats.mean, stats.max,
                             static_cast<long long>(sample.censored)});
            }
        }
        std::cout << "# Fig 2b: epochs of FAT needed to reach each accuracy target\n"
                  << "# (min/mean/max over repeated fault maps; censored runs pinned at "
                     "budget "
                  << table.max_epochs() << ")\n";
        out.write(std::cout);
        std::cerr << "[fig2b] done in " << timer.seconds() << " s\n";
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
}
