#include "nn/serialize.h"

#include <cstdint>
#include <fstream>

#include "util/error.h"

namespace reduce {

model_snapshot snapshot_parameters(const std::vector<parameter*>& params) {
    model_snapshot snap;
    snap.names.reserve(params.size());
    snap.values.reserve(params.size());
    for (const parameter* p : params) {
        REDUCE_CHECK(p != nullptr, "snapshot received a null parameter");
        snap.names.push_back(p->name);
        snap.values.push_back(p->value);
    }
    return snap;
}

void restore_parameters(const std::vector<parameter*>& params, const model_snapshot& snapshot) {
    if (params.size() != snapshot.size()) {
        throw io_error("snapshot has " + std::to_string(snapshot.size()) +
                       " parameters, model has " + std::to_string(params.size()));
    }
    for (std::size_t i = 0; i < params.size(); ++i) {
        if (params[i]->value.shape() != snapshot.values[i].shape()) {
            throw io_error("snapshot parameter " + std::to_string(i) + " shape " +
                           snapshot.values[i].describe() + " does not match model " +
                           params[i]->value.describe());
        }
        params[i]->value = snapshot.values[i];
    }
}

namespace {

constexpr char k_magic[] = "RDNN1\n";
constexpr std::size_t k_magic_len = 6;

template <typename T>
void write_pod(std::ofstream& os, T value) {
    os.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T read_pod(std::ifstream& is) {
    T value{};
    is.read(reinterpret_cast<char*>(&value), sizeof value);
    if (!is) { throw io_error("unexpected end of snapshot file"); }
    return value;
}

}  // namespace

void save_snapshot(const std::string& path, const model_snapshot& snapshot) {
    std::ofstream file(path, std::ios::binary);
    if (!file) { throw io_error("cannot open snapshot file for writing: " + path); }
    file.write(k_magic, k_magic_len);
    write_pod<std::uint64_t>(file, snapshot.size());
    for (std::size_t i = 0; i < snapshot.size(); ++i) {
        const std::string& name = snapshot.names[i];
        const tensor& value = snapshot.values[i];
        write_pod<std::uint32_t>(file, static_cast<std::uint32_t>(name.size()));
        file.write(name.data(), static_cast<std::streamsize>(name.size()));
        write_pod<std::uint32_t>(file, static_cast<std::uint32_t>(value.dim()));
        for (const std::size_t extent : value.shape()) {
            write_pod<std::uint64_t>(file, extent);
        }
        file.write(reinterpret_cast<const char*>(value.raw()),
                   static_cast<std::streamsize>(value.numel() * sizeof(float)));
    }
    if (!file) { throw io_error("failed while writing snapshot: " + path); }
}

model_snapshot load_snapshot(const std::string& path) {
    std::ifstream file(path, std::ios::binary);
    if (!file) { throw io_error("cannot open snapshot file: " + path); }
    char magic[k_magic_len] = {};
    file.read(magic, k_magic_len);
    if (!file || std::string(magic, k_magic_len) != std::string(k_magic, k_magic_len)) {
        throw io_error("not a model snapshot file: " + path);
    }
    const auto count = read_pod<std::uint64_t>(file);
    model_snapshot snap;
    snap.names.reserve(count);
    snap.values.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        const auto name_len = read_pod<std::uint32_t>(file);
        std::string name(name_len, '\0');
        file.read(name.data(), name_len);
        if (!file) { throw io_error("unexpected end of snapshot file"); }
        const auto rank = read_pod<std::uint32_t>(file);
        shape_t shape(rank);
        for (auto& extent : shape) {
            extent = static_cast<std::size_t>(read_pod<std::uint64_t>(file));
        }
        tensor value(shape);
        file.read(reinterpret_cast<char*>(value.raw()),
                  static_cast<std::streamsize>(value.numel() * sizeof(float)));
        if (!file) { throw io_error("unexpected end of snapshot file"); }
        snap.names.push_back(std::move(name));
        snap.values.push_back(std::move(value));
    }
    return snap;
}

}  // namespace reduce
