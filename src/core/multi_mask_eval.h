// Batched multi-mask evaluation engine — grouped test-set inference for the
// fleet stages of Reduce.
//
// Steps 2+3 pay their dominant non-training cost in repeated test-set
// inference: every chip's `accuracy_before` (and every sweep cell's epoch-0
// trajectory point) evaluates the SAME pretrained weights under a different
// fault mask, over the SAME test set. The serial path pays, per chip, a
// weight restore, a mask build + attach + apply, a full forward per eval
// batch, and a guard teardown. This engine evaluates K fault-masked
// variants in one pass instead:
//
//   * masked weights are materialized per variant in one fused pass over a
//     precomputed element→PE lookup table (no mask tensors, no modulo math
//     per chip, no model mutation);
//   * the test batch is gathered once and layers before the first mapped
//     layer run once (the shared prefix);
//   * the first mapped layer fans the shared activations out through the
//     grouped GEMM drivers of tensor/gemm.h — the activation panels are
//     packed once and reused across every masked weight;
//   * every later layer runs once over the variant-stacked batch, so
//     per-layer fixed costs (lowering, allocation, scatter, bias) are paid
//     once per group instead of once per chip; grouped conv lowering also
//     skips structurally-zero padding rows (see tensor/conv.h).
//
// Determinism contract: evaluate()[i] is byte-identical to the serial path
//   restore_parameters → attach_fault_masks(grid_i) → trainer.evaluate()
// on a clone of the same prototype, at every group size and thread count.
// The engine never mutates its model clone, so one evaluator serves any
// number of groups back to back (fleet workers keep one per thread).
//
// Memory: one group holds K × (mapped-layer weights) floats of masked
// weights plus K × (eval batch activations) — the --eval-batch-chips knob
// bounds K.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "accel/array_config.h"
#include "accel/fault_grid.h"
#include "core/fat_trainer.h"
#include "data/dataset.h"
#include "nn/models.h"
#include "nn/serialize.h"

namespace reduce {

/// Grouped evaluator bound to one (model, pretrained snapshot, test set,
/// array) tuple. Thread-compatibility: one evaluator per thread (it owns a
/// private model clone); distinct evaluators never share mutable state.
class multi_mask_evaluator {
public:
    /// Clones `prototype` and restores `pretrained` into the clone; the
    /// referenced test set must outlive the evaluator. `trainer_cfg` only
    /// contributes the eval batch sizing rule (max(batch_size, 256)), so
    /// grouped batches split exactly like fault_aware_trainer::evaluate —
    /// splits never change results, but matching keeps memory behaviour
    /// comparable.
    multi_mask_evaluator(const sequential& prototype, const model_snapshot& pretrained,
                         const dataset& test_data, const array_config& array,
                         const fat_config& trainer_cfg);

    /// Test accuracy of the pretrained model under each fault grid, all
    /// computed in one pass over the test set. Element i is byte-identical
    /// to the serial restore→mask→evaluate path for grids[i]. Grids must
    /// match the array geometry; a fault-free grid (a chip with an empty
    /// mask) is valid and evaluates the unmasked model.
    std::vector<double> evaluate(const std::vector<const fault_grid*>& grids);

    /// FAM-aware overload: `perms[g]` is variant g's per-mapped-layer column
    /// permutation set (the fam_permutations result fed to
    /// attach_fault_masks_permuted), or nullptr for the identity mapping.
    /// Element i is byte-identical to the serial
    /// restore→attach_fault_masks_permuted(grid_i, *perms[i])→evaluate path.
    /// Permuted LUTs are built per call (the permutation is per chip, so
    /// there is nothing to hoist); identity variants reuse the hoisted
    /// table.
    std::vector<double> evaluate(
        const std::vector<const fault_grid*>& grids,
        const std::vector<const std::vector<std::vector<std::size_t>>*>& perms);

    /// Mid-trajectory entry: evaluates caller-supplied masked weights —
    /// `masked_weights[l][g]` is variant g's weight for the l-th mapped
    /// layer (e.g. a retraining checkpoint's value ⊙ mask) — in one stacked
    /// pass. Two loud preconditions (REDUCE_CHECK / throw) instead of
    /// silent drift:
    ///   * the model must carry no state buffers — the evaluator's clone
    ///     holds PRETRAINED batch-norm statistics, which mid-trajectory
    ///     variants have diverged from; grouped checkpoint evaluation of
    ///     normalizing models belongs to grouped_chip_tuner's walker, which
    ///     slices per-variant BN state;
    ///   * every supplied weight must be finite (the grouped conv skip
    ///     contract).
    std::vector<double> evaluate_masked(const std::vector<std::vector<tensor>>& masked_weights,
                                        std::size_t groups);

private:
    /// Shared test-set pass over materialized masked weights.
    std::vector<double> run_pass(const std::vector<std::vector<tensor>>& masked,
                                 std::size_t groups);
    /// Validates grids and refreshes faulty_scratch_ for `groups` variants.
    void build_faulty_grids(const std::vector<const fault_grid*>& grids);
    std::unique_ptr<sequential> model_;
    const dataset& test_data_;
    array_config array_;
    std::size_t eval_batch_;
    std::vector<mapped_layer> mapped_;  ///< non-owning views into model_
    /// Per mapped layer: weight element → flat PE index (row*cols + col)
    /// under the identity column mapping — the same indexing
    /// build_weight_mask performs, hoisted out of the per-chip loop.
    std::vector<std::vector<std::uint32_t>> pe_lut_;
    /// Masked-weight tensors [mapped layer][variant] and per-variant
    /// faulty-PE byte grids, storage reused across evaluate() calls
    /// (contents valid only within one call).
    std::vector<std::vector<tensor>> masked_scratch_;
    std::vector<std::vector<unsigned char>> faulty_scratch_;
};

}  // namespace reduce
