// Tests for the command-line parser used by every bench/example binary.
#include <gtest/gtest.h>

#include <vector>

#include "util/cli.h"
#include "util/error.h"

namespace reduce {
namespace {

cli_args parse(std::initializer_list<const char*> tokens) {
    std::vector<const char*> argv = {"prog"};
    argv.insert(argv.end(), tokens.begin(), tokens.end());
    return cli_args(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, ProgramName) {
    const cli_args args = parse({});
    EXPECT_EQ(args.program(), "prog");
}

TEST(Cli, KeyValueSpaceForm) {
    const cli_args args = parse({"--rate", "0.25"});
    EXPECT_TRUE(args.has("rate"));
    EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 0.25);
}

TEST(Cli, KeyValueEqualsForm) {
    const cli_args args = parse({"--rate=0.5"});
    EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 0.5);
}

TEST(Cli, BareFlag) {
    const cli_args args = parse({"--verbose"});
    EXPECT_TRUE(args.get_flag("verbose"));
    EXPECT_FALSE(args.get_flag("quiet"));
}

TEST(Cli, FlagWithExplicitValue) {
    EXPECT_TRUE(parse({"--x=true"}).get_flag("x"));
    EXPECT_TRUE(parse({"--x=1"}).get_flag("x"));
    EXPECT_TRUE(parse({"--x=yes"}).get_flag("x"));
    EXPECT_FALSE(parse({"--x=0"}).get_flag("x"));
    EXPECT_FALSE(parse({"--x=false"}).get_flag("x"));
}

TEST(Cli, FlagFollowedByFlag) {
    // `--a --b`: a must not swallow b as its value.
    const cli_args args = parse({"--a", "--b"});
    EXPECT_TRUE(args.get_flag("a"));
    EXPECT_TRUE(args.get_flag("b"));
}

TEST(Cli, IntegerOption) {
    const cli_args args = parse({"--chips", "100"});
    EXPECT_EQ(args.get_int("chips", 0), 100);
    EXPECT_EQ(args.get_int("missing", -5), -5);
}

TEST(Cli, IntegerRejectsGarbage) {
    const cli_args args = parse({"--chips", "10x"});
    EXPECT_THROW(args.get_int("chips", 0), error);
}

TEST(Cli, DoubleRejectsGarbage) {
    const cli_args args = parse({"--rate", "abc"});
    EXPECT_THROW(args.get_double("rate", 0.0), error);
}

TEST(Cli, DefaultsWhenAbsent) {
    const cli_args args = parse({});
    EXPECT_EQ(args.get("name", "fallback"), "fallback");
    EXPECT_DOUBLE_EQ(args.get_double("rate", 1.5), 1.5);
}

TEST(Cli, Positional) {
    const cli_args args = parse({"input.json", "--k", "v", "more"});
    ASSERT_EQ(args.positional().size(), 2u);
    EXPECT_EQ(args.positional()[0], "input.json");
    EXPECT_EQ(args.positional()[1], "more");
}

TEST(Cli, DoubleList) {
    const cli_args args = parse({"--rates", "0.0,0.1,0.2"});
    const std::vector<double> rates = args.get_double_list("rates", {});
    ASSERT_EQ(rates.size(), 3u);
    EXPECT_DOUBLE_EQ(rates[1], 0.1);
}

TEST(Cli, DoubleListFallback) {
    const cli_args args = parse({});
    const std::vector<double> rates = args.get_double_list("rates", {1.0, 2.0});
    ASSERT_EQ(rates.size(), 2u);
}

TEST(Cli, DoubleListRejectsBadElement) {
    const cli_args args = parse({"--rates", "0.1,zz"});
    EXPECT_THROW(args.get_double_list("rates", {}), error);
}

TEST(Cli, StringList) {
    const cli_args args = parse({"--policy", "reduce,fixed,oracle"});
    const std::vector<std::string> names = args.get_string_list("policy", {});
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "reduce");
    EXPECT_EQ(names[2], "oracle");
}

TEST(Cli, StringListFallback) {
    const cli_args args = parse({});
    const std::vector<std::string> names = args.get_string_list("policy", {"reduce"});
    ASSERT_EQ(names.size(), 1u);
    EXPECT_EQ(names[0], "reduce");
}

TEST(Cli, StringListRejectsEmptyElement) {
    const cli_args args = parse({"--policy", "reduce,,fixed"});
    EXPECT_THROW(args.get_string_list("policy", {}), error);
}

TEST(Cli, NegativeNumberAsValue) {
    // A negative value is not an option token (it starts with '-', not '--').
    const cli_args args = parse({"--offset", "-3"});
    EXPECT_EQ(args.get_int("offset", 0), -3);
}

TEST(Cli, LastOccurrenceWins) {
    const cli_args args = parse({"--k", "1", "--k", "2"});
    EXPECT_EQ(args.get_int("k", 0), 2);
}

TEST(Cli, ShardParsesIndexOverCount) {
    const cli_args args = parse({"--shard", "2/8"});
    const shard_spec shard = args.get_shard("shard");
    EXPECT_EQ(shard.index, 2u);
    EXPECT_EQ(shard.count, 8u);
}

TEST(Cli, ShardDefaultsToSingleShard) {
    const cli_args args = parse({});
    const shard_spec shard = args.get_shard("shard");
    EXPECT_EQ(shard.index, 0u);
    EXPECT_EQ(shard.count, 1u);
}

TEST(Cli, ShardRejectsMalformedSpecs) {
    EXPECT_THROW(parse({"--shard", "2"}).get_shard("shard"), error);
    EXPECT_THROW(parse({"--shard", "a/2"}).get_shard("shard"), error);
    EXPECT_THROW(parse({"--shard", "1/b"}).get_shard("shard"), error);
    EXPECT_THROW(parse({"--shard", "/2"}).get_shard("shard"), error);
    EXPECT_THROW(parse({"--shard", "1/"}).get_shard("shard"), error);
    EXPECT_THROW(parse({"--shard", "0/0"}).get_shard("shard"), error);
    EXPECT_THROW(parse({"--shard", "2/2"}).get_shard("shard"), error);  // 0-based index
    // strtoull would silently wrap negatives to huge counts.
    EXPECT_THROW(parse({"--shard=0/-2"}).get_shard("shard"), error);
    EXPECT_THROW(parse({"--shard=-1/2"}).get_shard("shard"), error);
    EXPECT_THROW(parse({"--shard", "0/+2"}).get_shard("shard"), error);
}

}  // namespace
}  // namespace reduce
