#include "data/dataset.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/rng.h"

namespace reduce {

void dataset::validate() const {
    REDUCE_CHECK(features.dim() >= 2, "dataset features must be at least rank-2");
    REDUCE_CHECK(features.extent(0) == labels.size(),
                 "dataset has " << features.extent(0) << " feature rows but " << labels.size()
                                << " labels");
    REDUCE_CHECK(num_classes > 0, "dataset must declare num_classes");
    for (const std::size_t label : labels) {
        REDUCE_CHECK(label < num_classes,
                     "label " << label << " out of range [0," << num_classes << ")");
    }
}

tensor dataset::sample(std::size_t index) const {
    REDUCE_CHECK(index < size(), "sample index " << index << " out of range");
    const std::size_t row_elems = features.numel() / features.extent(0);
    shape_t shape = features.shape();
    shape[0] = 1;
    std::vector<float> values(features.raw() + index * row_elems,
                              features.raw() + (index + 1) * row_elems);
    return tensor(std::move(shape), std::move(values));
}

dataset_split split_dataset(const dataset& data, double train_fraction, std::uint64_t seed) {
    data.validate();
    REDUCE_CHECK(train_fraction > 0.0 && train_fraction < 1.0,
                 "train_fraction must be in (0,1), got " << train_fraction);
    rng gen(seed);
    const std::vector<std::size_t> order = gen.permutation(data.size());
    const std::size_t train_count =
        static_cast<std::size_t>(std::lround(train_fraction * static_cast<double>(data.size())));
    REDUCE_CHECK(train_count > 0 && train_count < data.size(),
                 "split leaves an empty partition (train_count=" << train_count << ")");

    const std::vector<std::size_t> train_idx(order.begin(),
                                             order.begin() + static_cast<std::ptrdiff_t>(train_count));
    const std::vector<std::size_t> test_idx(order.begin() + static_cast<std::ptrdiff_t>(train_count),
                                            order.end());
    dataset_split split;
    batch train_b = gather_batch(data, train_idx);
    batch test_b = gather_batch(data, test_idx);
    split.train = dataset{std::move(train_b.features), std::move(train_b.labels),
                          data.num_classes};
    split.test = dataset{std::move(test_b.features), std::move(test_b.labels), data.num_classes};
    return split;
}

feature_stats compute_feature_stats(const dataset& data) {
    data.validate();
    REDUCE_CHECK(data.features.dim() == 2, "compute_feature_stats expects [N,D] features");
    const std::size_t n = data.features.extent(0);
    const std::size_t d = data.features.extent(1);
    feature_stats stats{tensor({d}), tensor({d})};
    const float* x = data.features.raw();
    for (std::size_t j = 0; j < d; ++j) {
        double mean = 0.0;
        for (std::size_t i = 0; i < n; ++i) { mean += x[i * d + j]; }
        mean /= static_cast<double>(n);
        double var = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            const double diff = x[i * d + j] - mean;
            var += diff * diff;
        }
        var /= static_cast<double>(n);
        stats.mean[j] = static_cast<float>(mean);
        stats.stddev[j] = static_cast<float>(std::max(std::sqrt(var), 1e-6));
    }
    return stats;
}

void standardize(dataset& data, const feature_stats& stats) {
    REDUCE_CHECK(data.features.dim() == 2, "standardize expects [N,D] features");
    const std::size_t n = data.features.extent(0);
    const std::size_t d = data.features.extent(1);
    REDUCE_CHECK(stats.mean.numel() == d && stats.stddev.numel() == d,
                 "feature stats dim mismatch");
    float* x = data.features.raw();
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < d; ++j) {
            x[i * d + j] = (x[i * d + j] - stats.mean[j]) / stats.stddev[j];
        }
    }
}

batch gather_batch(const dataset& data, const std::vector<std::size_t>& indices) {
    REDUCE_CHECK(!indices.empty(), "gather_batch with empty index set");
    const std::size_t row_elems = data.features.numel() / data.features.extent(0);
    shape_t shape = data.features.shape();
    shape[0] = indices.size();
    batch out{tensor(shape), {}};
    out.labels.reserve(indices.size());
    const float* src = data.features.raw();
    float* dst = out.features.raw();
    for (std::size_t k = 0; k < indices.size(); ++k) {
        const std::size_t idx = indices[k];
        REDUCE_CHECK(idx < data.size(), "gather index " << idx << " out of range");
        std::copy(src + idx * row_elems, src + (idx + 1) * row_elems, dst + k * row_elems);
        out.labels.push_back(data.labels[idx]);
    }
    return out;
}

}  // namespace reduce
