// Minimal fixed-size worker pool for fan-out/join parallelism, plus the
// intra-op `parallel_for` primitive the tensor kernels run on.
//
// Two levels of parallelism share this file, mirroring the two-level thread
// budget of the whole framework:
//
//  * INTER-op (fleet level): `run_workers` runs a handful of long-running
//    job copies (one per worker, each draining a shared atomic work
//    counter) on a temporary `thread_pool` — the fleet executor and the
//    resilience sweep engine fan chips/cells out this way.
//  * INTRA-op (tensor level): `parallel_for` splits one kernel's index
//    range over a PERSISTENT process-wide pool sized by
//    `set_intra_op_threads`. The caller thread always participates and
//    claims chunks itself, so a busy pool can never deadlock a caller —
//    worst case the caller computes everything inline.
//
// Nesting rule: parallel regions do not nest. A `parallel_for` body — on
// the caller thread or on an intra-op pool worker — must not call
// `parallel_for` or `run_workers` again; both report a clear error
// (REDUCE_CHECK) instead of silently serializing or deadlocking. The
// supported composition is the other way around: `run_workers` jobs (fleet
// workers) MAY call `parallel_for`, which is how a retraining episode uses
// its per-worker slice of the gemm-thread budget. Jobs may throw; the first
// exception is captured and re-thrown after every sibling has finished.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace reduce {

/// Resolves a thread-count request: 0 → hardware concurrency (at least 1),
/// anything else unchanged. `cap` bounds the result when non-zero (no point
/// spawning more workers than work items).
std::size_t resolve_thread_count(std::size_t requested, std::size_t cap = 0);

/// The two-level thread budget: how many fleet/sweep workers fan out over
/// chips or grid cells (inter-op), and how many intra-op threads each
/// worker's tensor kernels may use via parallel_for. Neither level ever
/// changes results — outcomes are bit-identical at any budget (the kernels
/// never split a K accumulation across threads); the budget only moves
/// wall-clock time.
struct thread_budget {
    std::size_t fleet_workers = 1;
    std::size_t gemm_threads = 1;
};

/// Resolves a two-level request against the machine. `fleet_workers` and
/// `gemm_threads` follow resolve_thread_count semantics (0 → hardware
/// concurrency); `work_items` caps the worker count. Oversubscription
/// guard: when more than one fleet worker runs, the per-worker intra-op
/// budget is shrunk so that workers x gemm_threads never exceeds the
/// hardware thread count — inter-chip workers already saturate the machine,
/// and oversubscribing it with nested GEMM threads only adds contention
/// (a LOG_WARN reports the shrink). A single-worker run keeps its explicit
/// gemm_threads request unclamped.
thread_budget resolve_thread_budget(std::size_t fleet_workers, std::size_t gemm_threads,
                                    std::size_t work_items);

/// Sets the process-wide intra-op thread budget consumed by parallel_for
/// (0 → hardware concurrency; the value is resolved before storing).
/// Returns the previous budget. Default is 1: serial kernels unless a
/// harness or engine opts in (--gemm-threads).
std::size_t set_intra_op_threads(std::size_t threads);

/// Current intra-op thread budget (always >= 1).
std::size_t intra_op_threads();

/// RAII budget override: sets the intra-op budget on construction and
/// restores the previous value on destruction — how the fleet executor and
/// the sweep engine scope their guarded per-worker budget to one run.
class scoped_intra_op_threads {
public:
    explicit scoped_intra_op_threads(std::size_t threads)
        : previous_(set_intra_op_threads(threads)) {}
    scoped_intra_op_threads(const scoped_intra_op_threads&) = delete;
    scoped_intra_op_threads& operator=(const scoped_intra_op_threads&) = delete;
    ~scoped_intra_op_threads() { set_intra_op_threads(previous_); }

private:
    std::size_t previous_;
};

/// Runs `body(begin, end)` over a static partition of [0, n) into at most
/// intra_op_threads() contiguous chunks. Chunk boundaries are a pure
/// function of n and the budget — never of scheduling — and the caller
/// thread participates (claiming chunks alongside the persistent intra-op
/// pool), so the call makes progress even when every pool worker is busy
/// with another caller. Determinism is the CALLER's contract: bodies must
/// write disjoint output ranges and keep every accumulation chain within
/// one chunk (the GEMM drivers partition M/N macro-panels and never split
/// K, which is why their results are bit-identical at any budget).
/// Exceptions from any chunk are captured; the first is re-thrown on the
/// caller after all chunks finish. Throws immediately when invoked from
/// inside a parallel region (see the nesting rule above).
void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& body);

/// True while the calling thread executes a parallel_for body (either as
/// the caller or as an intra-op pool worker). Exposed for kernels that want
/// to assert the nesting rule early with a domain-specific message.
bool in_intra_op_region();

/// The shared fan-out gate of every intra-op kernel: true when the budget
/// exceeds one thread, the caller is not already inside a parallel region,
/// and `work` (a caller-chosen unit: multiply-adds for GEMM, elements for
/// data movement) reaches `min_work`. Gating is a pure function of shapes
/// and the budget — and even an "oversized" fan-out of tiny work is merely
/// slow, never wrong, since the kernels are bit-identical at any budget.
inline bool should_fan_out(double work, double min_work) {
    return intra_op_threads() > 1 && !in_intra_op_region() && work >= min_work;
}

/// Caps a work-claim group width at an even items/worker split (and a floor
/// of 1): the shared rule of the fleet executor and the sweep engine, whose
/// grouped-evaluation blocks double as the unit workers claim — an
/// oversized group request must shrink its grouping benefit, never starve
/// worker threads of items.
std::size_t cap_group_at_fair_share(std::size_t group, std::size_t items,
                                    std::size_t workers);

/// Runs `workers` copies of `job` to completion — the shared fan-out idiom
/// of the fleet executor and the resilience sweep engine, where each copy
/// drains a common atomic work counter. With one worker the job runs inline
/// on the calling thread (no pool, exceptions propagate directly); with
/// more, a temporary pool runs the copies and wait() re-throws the first
/// failure after every copy has finished. Job copies may call parallel_for;
/// run_workers itself must NOT be called from inside a parallel_for body
/// (it reports a clear error — see the nesting rule above).
void run_workers(std::size_t workers, const std::function<void()>& job);

/// Fixed pool of worker threads consuming a FIFO job queue.
class thread_pool {
public:
    /// Spawns `num_threads` workers (must be >= 1).
    explicit thread_pool(std::size_t num_threads);

    thread_pool(const thread_pool&) = delete;
    thread_pool& operator=(const thread_pool&) = delete;

    /// Drains the queue, then joins all workers.
    ~thread_pool();

    /// Number of worker threads.
    std::size_t size() const { return workers_.size(); }

    /// Enqueues a job. Must not be called after the destructor has begun.
    void submit(std::function<void()> job);

    /// Blocks until every submitted job has finished. If any job threw, the
    /// first captured exception is re-thrown here (subsequent calls do not
    /// re-throw it again).
    void wait();

private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable work_available_;
    std::condition_variable all_done_;
    std::size_t in_flight_ = 0;
    bool stopping_ = false;
    std::exception_ptr first_error_;
};

}  // namespace reduce
