// Parameter snapshot (de)serialization.
//
// Two uses in the Reduce pipeline:
//  * snapshotting the pre-trained model so every per-chip retraining run
//    starts from identical weights (the paper retrains the *given* DNN per
//    chip, not a chain), and
//  * persisting tuned models for distribution to their chips.
//
// The binary format is: magic "RDNN1\n", u64 parameter count, then per
// parameter: u32 name length + name bytes, u32 rank, u64 extents, f32 data.
#pragma once

#include <string>
#include <vector>

#include "nn/module.h"

namespace reduce {

/// In-memory snapshot of parameter values (weights only, no masks/grads).
struct model_snapshot {
    std::vector<std::string> names;
    std::vector<tensor> values;

    /// Number of parameters captured.
    std::size_t size() const { return values.size(); }
};

/// Captures the current values of all parameters.
model_snapshot snapshot_parameters(const std::vector<parameter*>& params);

/// Restores values captured by snapshot_parameters into the same model
/// (shapes and order must match; throws io_error otherwise). Masks and
/// gradients are left untouched.
void restore_parameters(const std::vector<parameter*>& params, const model_snapshot& snapshot);

/// Writes a snapshot to a binary file; throws io_error on failure.
void save_snapshot(const std::string& path, const model_snapshot& snapshot);

/// Reads a snapshot from a binary file; throws io_error on malformed files.
model_snapshot load_snapshot(const std::string& path);

}  // namespace reduce
