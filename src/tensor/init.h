// Weight initialization schemes (reproducible via reduce::rng).
#pragma once

#include "tensor/tensor.h"
#include "util/rng.h"

namespace reduce {

/// Fills with U(-limit, limit) where limit = sqrt(6 / (fan_in + fan_out)).
void xavier_uniform(tensor& t, std::size_t fan_in, std::size_t fan_out, rng& gen);

/// Fills with N(0, sqrt(2 / fan_in)) — He initialization for ReLU nets.
void he_normal(tensor& t, std::size_t fan_in, rng& gen);

/// Fills with U(lo, hi).
void uniform_init(tensor& t, float lo, float hi, rng& gen);

/// Fills with N(mean, stddev).
void normal_init(tensor& t, float mean, float stddev, rng& gen);

}  // namespace reduce
