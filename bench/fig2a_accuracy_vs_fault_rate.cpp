// Fig. 2a — Resilience trend: accuracy vs fault rate at different amounts
// of fault-aware retraining.
//
// Paper series: {No Re-training, 0.05 Epochs, 5 Epochs, 10 Epochs} over
// fault rates 0 → 0.8. One retraining run per (rate, repeat) covers every
// series: the trajectory is evaluated at each retraining level.
//
// Output: CSV on stdout (fault_rate, one column per retraining level).
// Options:
//   --rates 0.0,0.1,...   fault-rate grid        (default 0:0.1:0.8)
//   --levels 0,0.05,5,10  retraining levels      (default paper's)
//   --repeats N           fault maps per rate    (default 3)
//   --paper-scale         5 repeats
//   --seed S              experiment seed
//   --sweep-threads N     sweep worker threads   (default 1; 0 = all cores)
//   --gemm-threads N   intra-op tensor threads per worker (default 1; 0 = all cores)
//   --eval-group K     same-rate cells per grouped epoch-0 eval pass
//                      (default 1; never changes the table, only wall-clock)
//   --shard I/N           run shard I of N cells (CSV covers the shard only)
//   --scenario SPEC       fault-event timeline inside every cell's episode
//                         (grammar of fault/scenario.h, e.g.
//                         "strike@0.5:0.05;mode=recover;rollback=2"); feeds
//                         the fingerprint, so scenario tables cache apart
//   --cache-dir P         reuse/store the Step-1 table under P
//   --cache-gc            prune the Step-1 cache first (stale schemas, plus
//                         oldest entries beyond --cache-gc-max-mb)
//   --save-table P        dump the (shard) resilience table JSON to P

#include <iostream>

#include "core/resilience.h"
#include "core/workload.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/log.h"
#include "util/stopwatch.h"

using namespace reduce;

int main(int argc, char** argv) {
    try {
        const cli_args args(argc, argv);
        set_log_level(args.get_flag("verbose") ? log_level::info : log_level::warn);
        stopwatch timer;
        maybe_run_cache_gc(args);

        std::vector<double> rates =
            args.get_double_list("rates", {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8});
        std::vector<double> levels = args.get_double_list("levels", {0.0, 0.05, 5.0, 10.0});
        std::size_t repeats = static_cast<std::size_t>(args.get_int("repeats", 3));
        if (args.get_flag("paper-scale")) { repeats = 5; }
        const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 20230221));
        sweep_options sweep;
        sweep.threads = static_cast<std::size_t>(args.get_int("sweep-threads", 1));
        sweep.gemm_threads = static_cast<std::size_t>(args.get_int("gemm-threads", 1));
        sweep.eval_group = static_cast<std::size_t>(args.get_int("eval-group", 1));
        const shard_spec shard = args.get_shard("shard");
        sweep.shard_index = shard.index;
        sweep.shard_count = shard.count;

        double budget = 0.0;
        for (const double level : levels) { budget = std::max(budget, level); }
        if (budget == 0.0) { budget = 1.0; }

        resilience_config cfg;
        cfg.fault_rates = rates;
        cfg.repeats = repeats;
        cfg.max_epochs = budget;
        cfg.eval_grid = levels;  // evaluate exactly at the series levels
        cfg.seed = seed;
        cfg.context = workload_context();
        if (args.has("scenario")) { cfg.scenario = parse_scenario(args.get("scenario", "")); }

        const resilience_table table = [&]() -> resilience_table {
            // A warm cache answers before the workload is even built — no
            // dataset synthesis, no pretraining.
            if (args.has("cache-dir")) {
                const resilience_cache cache(args.get("cache-dir", ""));
                if (std::optional<resilience_table> cached = cache.load(cfg, sweep)) {
                    std::cerr << "[fig2a] Step-1 cache hit: "
                              << cache.path_for(cfg, sweep) << '\n';
                    return std::move(*cached);
                }
            }
            workload w = make_standard_workload();
            std::cerr << "[fig2a] workload ready: clean accuracy "
                      << w.clean_accuracy * 100.0 << "%\n";
            resilience_analyzer analyzer(*w.model, w.pretrained, w.train_data, w.test_data,
                                         w.array, w.trainer_cfg);
            return run_resilience_sweep(analyzer, cfg, sweep, args.get("cache-dir", ""));
        }();
        if (args.has("save-table")) {
            json_save_file(args.get("save-table", ""), table.to_json());
            std::cerr << "[fig2a] resilience table saved to " << args.get("save-table", "")
                      << '\n';
        }

        std::vector<std::string> columns = {"fault_rate"};
        for (const double level : levels) {
            columns.push_back(level == 0.0 ? "no_retraining"
                                           : "epochs_" + std::to_string(level).substr(0, 4));
        }
        csv_table out(columns);
        out.set_precision(4);
        // A shard covers only its subset of the grid, so iterate what the
        // table actually holds rather than the requested rates — and say so
        // in the output: a rate can be present with fewer repeats than the
        // full sweep, making its statistics a shard-local preview.
        if (table.grid_cells() != 0 && table.runs().size() < table.grid_cells()) {
            std::cout << "# WARNING: partial shard table (" << table.runs().size() << " of "
                      << table.grid_cells()
                      << " cells); statistics preview this shard's repeats only — merge "
                         "all shards for the real figure\n";
        }
        for (const double rate : table.fault_rates()) {
            std::vector<csv_cell> row = {rate};
            for (const double level : levels) {
                row.push_back(table.accuracy_at(rate, level, statistic::mean) * 100.0);
            }
            out.add_row(std::move(row));
        }
        std::cout << "# Fig 2a: accuracy [%] vs fault rate at retraining levels "
                     "(mean over "
                  << repeats << " fault maps)\n";
        out.write(std::cout);
        std::cerr << "[fig2a] done in " << timer.seconds() << " s\n";
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
}
