// Minimal leveled logger. Bench/example binaries log progress to stderr so
// stdout stays clean CSV for piping into plot scripts.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace reduce {

/// Log severities in increasing order of importance.
enum class log_level {
    debug = 0,
    info = 1,
    warn = 2,
    error = 3,
    off = 4,
};

/// Sets the global threshold; messages below it are dropped.
void set_log_level(log_level level);

/// Current global threshold.
log_level get_log_level();

/// Emits one line to stderr if `level` passes the threshold.
void log_message(log_level level, const std::string& message);

/// Capture hook: while a sink is installed, messages that pass the
/// threshold are delivered to it *instead of* stderr. Pass nullptr to
/// restore stderr logging. Install/remove and delivery are serialized under
/// one lock, so a sink may be used from multi-threaded code under test.
using log_sink = std::function<void(log_level, const std::string&)>;
void set_log_sink(log_sink sink);

namespace detail {

class log_line {
public:
    explicit log_line(log_level level) : level_(level) {}
    log_line(const log_line&) = delete;
    log_line& operator=(const log_line&) = delete;
    ~log_line() { log_message(level_, stream_.str()); }

    template <typename T>
    log_line& operator<<(const T& value) {
        stream_ << value;
        return *this;
    }

private:
    log_level level_;
    std::ostringstream stream_;
};

}  // namespace detail

/// Stream-style logging: LOG_INFO << "trained chip " << id;
#define LOG_DEBUG ::reduce::detail::log_line(::reduce::log_level::debug)
#define LOG_INFO ::reduce::detail::log_line(::reduce::log_level::info)
#define LOG_WARN ::reduce::detail::log_line(::reduce::log_level::warn)
#define LOG_ERROR ::reduce::detail::log_line(::reduce::log_level::error)

}  // namespace reduce
